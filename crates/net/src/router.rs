//! Route table: `(method, path)` → handler dispatch tag.
//!
//! | Method & path          | Route                | Purpose |
//! |------------------------|----------------------|---------|
//! | `POST /classify`       | [`Route::Classify`]  | classify one product or a batch |
//! | `POST /rulesets`       | [`Route::CreateRules`] | add DSL rules (durably) |
//! | `GET /rulesets`        | [`Route::ListRules`] | list all rules |
//! | `GET /rulesets/{id}`   | [`Route::GetRule`]   | fetch one rule |
//! | `DELETE /rulesets/{id}`| [`Route::DeleteRule`]| remove one rule (durably) |
//! | `GET /health`          | [`Route::Health`]    | snapshot version, degradation, queue depths |
//! | `GET /metrics`         | [`Route::Metrics`]   | Prometheus text exposition |

use crate::http::Method;

/// A resolved route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    Classify,
    CreateRules,
    ListRules,
    GetRule(u64),
    DeleteRule(u64),
    Health,
    Metrics,
}

impl Route {
    /// Stable label for per-route metrics (`{route="..."}`). Parameterized
    /// routes share one label so cardinality stays bounded.
    pub fn label(self) -> &'static str {
        match self {
            Route::Classify => "classify",
            Route::CreateRules => "rulesets_create",
            Route::ListRules => "rulesets_list",
            Route::GetRule(_) => "rulesets_get",
            Route::DeleteRule(_) => "rulesets_delete",
            Route::Health => "health",
            Route::Metrics => "metrics",
        }
    }

    /// Every metric label the router can produce (metric pre-registration).
    pub fn labels() -> [&'static str; 7] {
        [
            "classify",
            "rulesets_create",
            "rulesets_list",
            "rulesets_get",
            "rulesets_delete",
            "health",
            "metrics",
        ]
    }
}

/// Why a request matched no route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// Unknown path — 404.
    NotFound,
    /// Known path, wrong method — 405.
    MethodNotAllowed,
}

impl RouteError {
    pub fn status(self) -> u16 {
        match self {
            RouteError::NotFound => 404,
            RouteError::MethodNotAllowed => 405,
        }
    }
}

/// Resolves `(method, path)` to a route. Trailing slashes are tolerated
/// (`/rulesets/` ≡ `/rulesets`).
pub fn route(method: Method, path: &str) -> Result<Route, RouteError> {
    let path = if path.len() > 1 { path.trim_end_matches('/') } else { path };
    match path {
        "/classify" => match method {
            Method::Post => Ok(Route::Classify),
            _ => Err(RouteError::MethodNotAllowed),
        },
        "/rulesets" => match method {
            Method::Post => Ok(Route::CreateRules),
            Method::Get | Method::Head => Ok(Route::ListRules),
            _ => Err(RouteError::MethodNotAllowed),
        },
        "/health" => match method {
            Method::Get | Method::Head => Ok(Route::Health),
            _ => Err(RouteError::MethodNotAllowed),
        },
        "/metrics" => match method {
            Method::Get | Method::Head => Ok(Route::Metrics),
            _ => Err(RouteError::MethodNotAllowed),
        },
        _ => match path.strip_prefix("/rulesets/") {
            Some(rest) => {
                let id: u64 = rest.parse().map_err(|_| RouteError::NotFound)?;
                match method {
                    Method::Get | Method::Head => Ok(Route::GetRule(id)),
                    Method::Delete => Ok(Route::DeleteRule(id)),
                    _ => Err(RouteError::MethodNotAllowed),
                }
            }
            None => Err(RouteError::NotFound),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_resolve() {
        assert_eq!(route(Method::Post, "/classify"), Ok(Route::Classify));
        assert_eq!(route(Method::Post, "/rulesets"), Ok(Route::CreateRules));
        assert_eq!(route(Method::Get, "/rulesets"), Ok(Route::ListRules));
        assert_eq!(route(Method::Get, "/rulesets/42"), Ok(Route::GetRule(42)));
        assert_eq!(route(Method::Delete, "/rulesets/7/"), Ok(Route::DeleteRule(7)));
        assert_eq!(route(Method::Get, "/health"), Ok(Route::Health));
        assert_eq!(route(Method::Get, "/metrics"), Ok(Route::Metrics));
    }

    #[test]
    fn unknown_paths_404_and_wrong_methods_405() {
        assert_eq!(route(Method::Get, "/nope"), Err(RouteError::NotFound));
        assert_eq!(route(Method::Get, "/rulesets/abc"), Err(RouteError::NotFound));
        assert_eq!(route(Method::Get, "/classify"), Err(RouteError::MethodNotAllowed));
        assert_eq!(route(Method::Delete, "/health"), Err(RouteError::MethodNotAllowed));
    }
}
