//! The TCP server: one acceptor thread feeding a fixed pool of connection
//! handlers through a bounded queue, keep-alive HTTP/1.1 sessions with
//! read/write timeouts, and a graceful three-phase shutdown — stop
//! accepting, flush in-flight requests, then let the serving tier shed
//! whatever is still queued.
//!
//! Overload surfaces at two points, both explicit:
//!
//! * the **socket edge**: when every handler is busy and the pending-
//!   connection queue is full, new connections get an immediate canned 503
//!   and are closed (counted in `rulekit_net_accept_rejected_total`);
//! * the **admission queue**: a classify request the serving tier cannot
//!   admit is answered 503 (`rulekit_net_overload_shed_total`) — the same
//!   backpressure in-process callers see as [`Admission::Overloaded`].
//!
//! [`Admission::Overloaded`]: rulekit_serve::Admission::Overloaded

use crate::app::RuleApp;
use crate::handler::{dispatch, draining_response};
use crate::http::{parse_request, HttpError, HttpLimits, Method, ParseOutcome, Response};
use crate::metrics::NetMetrics;
use crate::wire::error_json;
use rulekit_obs::Registry;
use rulekit_serve::BoundedQueue;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Front-end tuning knobs.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Connection-handler threads (each serves one connection at a time).
    pub handler_threads: usize,
    /// Accepted connections waiting for a free handler; beyond this the
    /// acceptor answers a canned 503 and closes.
    pub pending_connections: usize,
    /// HTTP parser limits.
    pub limits: HttpLimits,
    /// Per-connection read timeout (also bounds idle keep-alive lifetime
    /// and how long drain waits for a handler to notice shutdown).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Deadline attached to classify submissions (`None`: the service
    /// config's default deadline).
    pub classify_deadline: Option<Duration>,
    /// Maximum products in one batch classify request.
    pub max_batch: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            handler_threads: 8,
            pending_connections: 64,
            limits: HttpLimits::default(),
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            classify_deadline: None,
            max_batch: 256,
        }
    }
}

/// Shared server state (app + config + telemetry + shutdown flag).
pub(crate) struct ServerState {
    pub(crate) app: RuleApp,
    pub(crate) cfg: NetConfig,
    pub(crate) metrics: NetMetrics,
    pub(crate) shutdown: AtomicBool,
    /// `(revision, hash)` of the last catalog hash computed for `/health`.
    /// The hash walks every rule, so recompute only when the revision moves
    /// — health is polled by load balancers and the front tier.
    catalog_hash_cache: Mutex<Option<(u64, u64)>>,
    conns: BoundedQueue<TcpStream>,
}

impl ServerState {
    pub(crate) fn is_draining(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// The catalog hash at the current revision, as `/health` renders it,
    /// cached by revision.
    pub(crate) fn catalog_hash_hex(&self) -> String {
        let mut cache = self.catalog_hash_cache.lock().unwrap_or_else(|e| e.into_inner());
        let revision = self.app.rules.revision();
        if let Some((rev, hash)) = *cache {
            if rev == revision {
                return format!("{hash:016x}");
            }
        }
        let hash = rulekit_store::catalog_hash(&self.app.rules);
        // Only cache if the catalog didn't move underneath the walk; a
        // racing mutation would otherwise pin a stale hash at its revision.
        if self.app.rules.revision() == revision {
            *cache = Some((revision, hash));
        }
        format!("{hash:016x}")
    }
}

/// A running front-end. Dropping it shuts down gracefully.
pub struct NetServer {
    state: Arc<ServerState>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `cfg.addr` and starts the acceptor and handler threads. The
    /// app's [`RuleService`] must already be running (it is, by
    /// construction of [`RuleApp`]).
    ///
    /// [`RuleService`]: rulekit_serve::RuleService
    pub fn start(app: RuleApp, cfg: NetConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let metrics = NetMetrics::new(app.registry.clone());
        let state = Arc::new(ServerState {
            conns: BoundedQueue::new(cfg.pending_connections.max(1)),
            app,
            cfg,
            metrics,
            shutdown: AtomicBool::new(false),
            catalog_hash_cache: Mutex::new(None),
        });

        let handlers = (0..state.cfg.handler_threads.max(1))
            .map(|i| {
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("rulekit-net-{i}"))
                    .spawn(move || handler_loop(&state))
                    .expect("spawn net handler")
            })
            .collect();

        let acceptor = {
            let state = state.clone();
            std::thread::Builder::new()
                .name("rulekit-net-accept".into())
                .spawn(move || acceptor_loop(&state, listener))
                .expect("spawn net acceptor")
        };

        Ok(NetServer { state, local_addr, acceptor: Some(acceptor), handlers })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.state.app.registry
    }

    /// The full Prometheus-style exposition `GET /metrics` serves.
    pub fn render_metrics(&self) -> String {
        self.state.app.registry.render_text()
    }

    /// The serving tier behind the socket.
    pub fn service(&self) -> &rulekit_serve::RuleService {
        &self.state.app.service
    }

    /// The durable store, when the app has one.
    pub fn store(&self) -> Option<&Arc<rulekit_store::DurableRepository>> {
        self.state.app.store.as_ref()
    }

    /// Whether a graceful shutdown is in progress (or finished).
    pub fn is_draining(&self) -> bool {
        self.state.is_draining()
    }

    /// Graceful drain: stop accepting, answer new requests on live
    /// connections with 503, let in-flight requests finish, join the
    /// network threads. The serving tier itself keeps running until the
    /// server (and its [`RuleApp`]) is dropped, at which point any still-
    /// queued work is shed with an explicit shutdown outcome. Idempotent.
    pub fn shutdown(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        self.state.conns.close();
        // Unblock the acceptor's blocking `accept` with a throwaway
        // connection; it re-checks the flag on wake.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.handlers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn acceptor_loop(state: &ServerState, listener: TcpListener) {
    loop {
        let conn = listener.accept();
        if state.is_draining() {
            return;
        }
        match conn {
            Ok((stream, _peer)) => {
                state.metrics.accepted.inc();
                if let Err(stream) = state.conns.try_push(stream) {
                    state.metrics.accept_rejected.inc();
                    reject_connection(stream, state);
                }
            }
            Err(_) => {
                // Transient accept failure (e.g. fd exhaustion): back off
                // instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Answers a connection the handler pool has no room for: one canned 503,
/// then close. Best-effort — the peer may already be gone.
fn reject_connection(stream: TcpStream, state: &ServerState) {
    let _ = stream.set_write_timeout(Some(state.cfg.write_timeout));
    let mut resp = Response::json(503, error_json("server at connection capacity"));
    resp.close = true;
    let mut stream = stream;
    let _ = stream.write_all(&resp.serialize());
}

fn handler_loop(state: &Arc<ServerState>) {
    loop {
        let mut batch = state.conns.pop_batch(1, Duration::from_millis(50));
        match batch.pop() {
            Some(stream) => {
                state.metrics.connections.inc();
                handle_connection(state, stream);
                state.metrics.connections.dec();
            }
            None => {
                if state.conns.is_closed() {
                    return;
                }
            }
        }
    }
}

/// Serves one keep-alive session: parse a request, dispatch, respond,
/// repeat until the peer closes, an error ends the session, or drain
/// begins.
fn handle_connection(state: &ServerState, stream: TcpStream) {
    let cfg = &state.cfg;
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(cfg.read_timeout)).is_err()
        || stream.set_write_timeout(Some(cfg.write_timeout)).is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;

    loop {
        match parse_request(&mut reader, &cfg.limits) {
            Ok(ParseOutcome::Closed) => return,
            Ok(ParseOutcome::Request(req)) => {
                let draining = state.is_draining();
                let mut resp = if draining {
                    state.metrics.drain_rejected.inc();
                    draining_response()
                } else {
                    dispatch(state, &req)
                };
                resp.close = resp.close || !req.keep_alive || draining;
                if req.method == Method::Head {
                    resp.body.clear();
                }
                let close = resp.close;
                if resp.write_to(&mut stream).is_err() {
                    return;
                }
                if close {
                    return;
                }
            }
            Err(err) => {
                state.metrics.http_errors.inc();
                if let Some(status) = err.status() {
                    let mut resp = Response::json(status, error_json(&err.message()));
                    resp.close = true;
                    let _ = resp.write_to(&mut stream);
                } else if let HttpError::Io(_) = err {
                    // Timeout or transport failure: nothing to say.
                }
                return;
            }
        }
    }
}
