//! JSON ⇄ domain-type mapping for the wire protocol: products in, rules and
//! classification outcomes out. Kept separate from the handlers so the
//! shapes are testable without a socket.

use crate::json::{obj, Json};
use rulekit_chimera::Decision;
use rulekit_core::{Provenance, Rule};
use rulekit_data::{Product, Taxonomy, VendorId};
use rulekit_serve::ClassifyOutcome;

/// Decodes a product from its wire object:
///
/// ```json
/// {"id": 9206544, "title": "Mainstays ivory tufted area rug 5'x7'",
///  "description": "…", "vendor": 3,
///  "attributes": {"Brand Name": "Mainstays", "Color": "ivory"}}
/// ```
///
/// `title` is required (it is what rules run against); everything else
/// defaults. The Figure 1 field spellings (`Item ID`, `Title`) are accepted
/// as aliases so a captured feed line can be replayed verbatim.
pub fn product_from_json(v: &Json) -> Result<Product, String> {
    let Json::Obj(_) = v else { return Err("product must be a JSON object".to_string()) };
    let title = v
        .get("title")
        .or_else(|| v.get("Title"))
        .and_then(Json::as_str)
        .ok_or_else(|| "product needs a string \"title\"".to_string())?;
    let id = match v.get("id").or_else(|| v.get("Item ID")) {
        Some(n) => n.as_u64().ok_or_else(|| "\"id\" must be a non-negative integer".to_string())?,
        None => 0,
    };
    let description = v
        .get("description")
        .or_else(|| v.get("Description"))
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    let vendor = match v.get("vendor") {
        Some(n) => {
            let n = n.as_u64().ok_or_else(|| "\"vendor\" must be an integer".to_string())?;
            VendorId(u32::try_from(n).map_err(|_| "\"vendor\" out of range".to_string())?)
        }
        None => VendorId(0),
    };
    let attributes = match v.get("attributes") {
        None => Vec::new(),
        Some(Json::Obj(members)) => members
            .iter()
            .map(|(k, v)| match v {
                Json::Str(s) => Ok((k.clone(), s.clone())),
                Json::Num(n) => Ok((k.clone(), Json::Num(*n).render())),
                Json::Bool(b) => Ok((k.clone(), b.to_string())),
                _ => Err(format!("attribute {k:?} must be a string, number, or bool")),
            })
            .collect::<Result<_, _>>()?,
        Some(_) => return Err("\"attributes\" must be an object".to_string()),
    };
    Ok(Product { id, title: title.to_string(), description, attributes, vendor })
}

/// Encodes a decision: `{"type": "rugs", "confidence": 0.93,
/// "explanation": […]}` or `{"declined": "reason"}`.
pub fn decision_to_json(decision: &Decision, taxonomy: &Taxonomy) -> Json {
    match decision {
        Decision::Classified { ty, confidence, explanation } => obj(vec![
            ("type", Json::from(taxonomy.name(*ty))),
            ("confidence", Json::from(*confidence)),
            (
                "explanation",
                Json::Arr(explanation.iter().map(|e| Json::from(e.as_str())).collect()),
            ),
        ]),
        Decision::Declined { reason } => obj(vec![("declined", Json::from(reason.as_str()))]),
    }
}

/// Encodes a served classification with its serving metadata.
pub fn outcome_to_json(outcome: &ClassifyOutcome, taxonomy: &Taxonomy) -> Json {
    obj(vec![
        ("decision", decision_to_json(&outcome.decision, taxonomy)),
        ("candidates", Json::from(outcome.candidates as u64)),
        ("degraded", Json::from(outcome.degraded)),
        ("snapshot_version", Json::from(outcome.snapshot_version)),
        ("latency_us", Json::from(outcome.latency.as_micros().min(u64::MAX as u128) as u64)),
    ])
}

fn provenance_str(p: Provenance) -> &'static str {
    match p {
        Provenance::Analyst => "analyst",
        Provenance::Developer => "developer",
        Provenance::Mined => "mined",
        Provenance::Curation => "curation",
        Provenance::Crowd => "crowd",
    }
}

/// Encodes a rule for the CRUD surface: id, DSL source, status, and the
/// metadata analysts filter on.
pub fn rule_to_json(rule: &Rule) -> Json {
    obj(vec![
        ("id", Json::from(rule.id.0)),
        ("source", Json::from(rule.source.as_str())),
        ("enabled", Json::from(rule.is_enabled())),
        ("author", Json::from(rule.meta.author.as_str())),
        ("provenance", Json::from(provenance_str(rule.meta.provenance))),
        ("confidence", Json::from(rule.meta.confidence)),
        ("added_at", Json::from(rule.meta.added_at)),
    ])
}

/// The uniform error body: `{"error": "…"}`.
pub fn error_json(message: &str) -> String {
    obj(vec![("error", Json::from(message))]).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_decodes_with_defaults_and_aliases() {
        let v = Json::parse(br#"{"title": "gold ring"}"#).unwrap();
        let p = product_from_json(&v).unwrap();
        assert_eq!(p.title, "gold ring");
        assert_eq!(p.id, 0);
        assert!(p.attributes.is_empty());

        let v = Json::parse(
            br#"{"Item ID": 7, "Title": "tufted rug", "attributes": {"Color": "ivory", "Width": 5}, "vendor": 3}"#,
        )
        .unwrap();
        let p = product_from_json(&v).unwrap();
        assert_eq!(p.id, 7);
        assert_eq!(p.vendor, VendorId(3));
        assert_eq!(p.attr("color"), Some("ivory"));
        assert_eq!(p.attr("width"), Some("5"));
    }

    #[test]
    fn product_rejects_bad_shapes() {
        for bad in [
            r#"[1,2]"#,
            r#"{"id": 1}"#,
            r#"{"title": 5}"#,
            r#"{"title": "x", "vendor": "three"}"#,
            r#"{"title": "x", "attributes": [1]}"#,
            r#"{"title": "x", "attributes": {"k": [1]}}"#,
        ] {
            let v = Json::parse(bad.as_bytes()).unwrap();
            assert!(product_from_json(&v).is_err(), "accepted {bad}");
        }
    }

    #[test]
    fn decision_and_error_shapes() {
        let taxonomy = Taxonomy::builtin();
        let ty = taxonomy.id_of("rings").unwrap();
        let d = Decision::Classified {
            ty,
            confidence: 0.9,
            explanation: vec!["rule#1 fired".to_string()],
        };
        let j = decision_to_json(&d, &taxonomy);
        assert_eq!(j.get("type").and_then(Json::as_str), Some("rings"));
        assert_eq!(j.get("confidence").and_then(Json::as_f64), Some(0.9));

        let d = Decision::Declined { reason: "low confidence".to_string() };
        let j = decision_to_json(&d, &taxonomy);
        assert_eq!(j.get("declined").and_then(Json::as_str), Some("low confidence"));

        assert_eq!(error_json("boom \"quoted\""), r#"{"error":"boom \"quoted\""}"#);
    }
}
