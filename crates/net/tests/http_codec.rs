//! HTTP codec round-trip property tests and a malformed-input corpus.
//!
//! The codec promises two things the serving tier leans on:
//!
//! 1. **Round-trip fidelity** — bytes produced by [`Request::serialize`] /
//!    [`Response::serialize`] parse back to the same request/response, so
//!    the in-crate client, the load driver, and the server all speak the
//!    same dialect.
//! 2. **No panics, only statuses** — arbitrary junk on the socket maps to
//!    a 4xx/5xx [`HttpError`] (or a clean close), never a crash of the
//!    handler thread.

use proptest::prelude::*;
use rulekit_net::{HttpError, HttpLimits, Method, ParseOutcome, Request, Response};
use std::io::BufReader;

fn parse(bytes: &[u8]) -> Result<ParseOutcome, HttpError> {
    let mut reader = BufReader::new(bytes);
    rulekit_net::parse_request(&mut reader, &HttpLimits::default())
}

fn parse_ok(bytes: &[u8]) -> Request {
    match parse(bytes).expect("expected a parse") {
        ParseOutcome::Request(r) => r,
        ParseOutcome::Closed => panic!("unexpected close"),
    }
}

/// Asserts the bytes produce a 4xx/5xx status — not a panic, not a
/// connection-level failure, not a successful parse.
fn assert_rejected(bytes: &[u8], expect_status: u16) {
    let err = parse(bytes).expect_err("malformed input must not parse");
    assert_eq!(
        err.status(),
        Some(expect_status),
        "wrong status for {:?}: {}",
        String::from_utf8_lossy(&bytes[..bytes.len().min(60)]),
        err.message()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// serialize → parse is the identity on every field the wire carries.
    #[test]
    fn request_round_trips(
        method_ix in 0usize..4,
        path_tail in "[a-z0-9/._-]{0,24}",
        query in "[a-z0-9=&+]{0,16}",
        names in prop::collection::vec("[a-z][a-z0-9-]{0,10}", 0..6),
        values in prop::collection::vec("[a-z0-9 _.;]{0,18}", 0..6),
        body in prop::collection::vec(any::<u8>(), 0..200),
        keep_alive in any::<bool>(),
    ) {
        let method = [Method::Get, Method::Post, Method::Delete, Method::Head][method_ix];
        let reserved = ["content-length", "connection", "transfer-encoding"];
        let headers: Vec<(String, String)> = names
            .iter()
            .zip(&values)
            .filter(|(n, _)| !reserved.contains(&n.as_str()))
            .map(|(n, v)| (n.clone(), v.trim().to_string()))
            .collect();
        let original = Request {
            method,
            path: format!("/{path_tail}"),
            query,
            headers,
            body,
            keep_alive,
        };

        let parsed = parse_ok(&original.serialize());
        prop_assert_eq!(parsed.method, original.method);
        prop_assert_eq!(&parsed.path, &original.path);
        prop_assert_eq!(&parsed.query, &original.query);
        prop_assert_eq!(&parsed.body, &original.body);
        prop_assert_eq!(parsed.keep_alive, original.keep_alive);
        // Every caller-supplied header survives (the codec may add
        // content-length / connection on top).
        for (k, v) in &original.headers {
            prop_assert_eq!(parsed.header(k), Some(v.as_str()), "header {} lost", k);
        }
    }

    /// Response serialize → parse_response preserves status and body.
    #[test]
    fn response_round_trips(
        status_ix in 0usize..8,
        body in prop::collection::vec(any::<u8>(), 0..300),
        close in any::<bool>(),
    ) {
        let status = [200u16, 201, 400, 404, 422, 500, 503, 504][status_ix];
        let original = Response { status, content_type: "application/json", body, close };
        let bytes = original.serialize();
        let mut reader = BufReader::new(&bytes[..]);
        let (got_status, headers, got_body) =
            rulekit_net::parse_response(&mut reader, &HttpLimits::default()).unwrap();
        prop_assert_eq!(got_status, status);
        prop_assert_eq!(&got_body, &original.body);
        let has_close = headers.iter().any(|(k, v)| k == "connection" && v == "close");
        prop_assert_eq!(has_close, close);
    }

    /// Arbitrary bytes never panic the parser: every outcome is a request,
    /// a clean close, or a typed error.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        let _ = parse(&bytes);
    }

    /// A plausible-but-corrupted request (valid prefix + junk) never
    /// panics either — this walks the parser deeper than pure noise does.
    #[test]
    fn parser_never_panics_on_corrupted_tail(
        junk in prop::collection::vec(any::<u8>(), 0..120),
    ) {
        let mut bytes = b"POST /classify HTTP/1.1\r\ncontent-length: 10\r\n".to_vec();
        bytes.extend_from_slice(&junk);
        let _ = parse(&bytes);
    }

    /// N serialized requests concatenated into one buffer parse back as
    /// exactly N requests followed by a clean close — the property that
    /// makes pipelining safe.
    #[test]
    fn pipelined_requests_parse_exactly(
        bodies in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 1..6),
    ) {
        let mut wire = Vec::new();
        for body in &bodies {
            let req = Request {
                method: Method::Post,
                path: "/classify".to_string(),
                query: String::new(),
                headers: vec![],
                body: body.clone(),
                keep_alive: true,
            };
            wire.extend_from_slice(&req.serialize());
        }
        let mut reader = BufReader::new(&wire[..]);
        let limits = HttpLimits::default();
        for body in &bodies {
            match rulekit_net::parse_request(&mut reader, &limits).unwrap() {
                ParseOutcome::Request(r) => prop_assert_eq!(&r.body, body),
                ParseOutcome::Closed => prop_assert!(false, "closed before all requests"),
            }
        }
        prop_assert!(matches!(
            rulekit_net::parse_request(&mut reader, &limits).unwrap(),
            ParseOutcome::Closed
        ));
    }
}

// --- malformed-input corpus -------------------------------------------------

#[test]
fn truncated_request_line_is_400() {
    assert_rejected(b"GET /health HT", 400);
    assert_rejected(b"GET", 400);
    assert_rejected(b"POST /classify HTTP/1.1\r\ncontent-len", 400);
}

#[test]
fn empty_input_is_clean_close() {
    assert!(matches!(parse(b"").unwrap(), ParseOutcome::Closed));
}

#[test]
fn oversized_request_line_is_414() {
    let mut bytes = b"GET /".to_vec();
    bytes.extend(std::iter::repeat_n(b'a', 9 * 1024));
    bytes.extend_from_slice(b" HTTP/1.1\r\n\r\n");
    assert_rejected(&bytes, 414);
}

#[test]
fn oversized_header_line_is_431() {
    let mut bytes = b"GET / HTTP/1.1\r\nx-big: ".to_vec();
    bytes.extend(std::iter::repeat_n(b'b', 9 * 1024));
    bytes.extend_from_slice(b"\r\n\r\n");
    assert_rejected(&bytes, 431);
}

#[test]
fn too_many_headers_is_431() {
    let mut bytes = b"GET / HTTP/1.1\r\n".to_vec();
    for i in 0..80 {
        bytes.extend_from_slice(format!("x-h{i}: v\r\n").as_bytes());
    }
    bytes.extend_from_slice(b"\r\n");
    assert_rejected(&bytes, 431);
}

#[test]
fn bad_content_length_is_400() {
    assert_rejected(b"POST / HTTP/1.1\r\ncontent-length: banana\r\n\r\n", 400);
    assert_rejected(b"POST / HTTP/1.1\r\ncontent-length: -5\r\n\r\n", 400);
    assert_rejected(b"POST / HTTP/1.1\r\ncontent-length: 4.5\r\n\r\n", 400);
}

#[test]
fn huge_content_length_is_413_before_reading_the_body() {
    // No body bytes follow at all: the limit check must fire on the
    // declared length, not after attempting a 10 GB read.
    assert_rejected(b"POST / HTTP/1.1\r\ncontent-length: 10737418240\r\n\r\n", 413);
}

#[test]
fn body_shorter_than_content_length_is_400() {
    assert_rejected(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc", 400);
}

#[test]
fn structural_garbage_is_400_or_501() {
    assert_rejected(b"GET / HTTP/2.0\r\n\r\n", 400); // unsupported version
    assert_rejected(b"BREW /coffee HTTP/1.1\r\n\r\n", 501); // unknown method
    assert_rejected(b"GET relative-path HTTP/1.1\r\n\r\n", 400); // not absolute
    assert_rejected(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n", 400);
    assert_rejected(b"GET / HTTP/1.1\r\nbad name: v\r\n\r\n", 400); // space in name
    assert_rejected(b"GET / HTTP/1.1 extra\r\n\r\n", 400); // 4-part request line
    assert_rejected(b"GET /\xff\xfe HTTP/1.1\r\n\r\n", 400); // non-utf8 line
}

#[test]
fn interleaved_pipelined_requests_fail_only_at_the_bad_one() {
    // A valid request, then a malformed one, back-to-back on one reader:
    // the first parses fully, the second errors with a status, no panic.
    let wire = b"POST /classify HTTP/1.1\r\ncontent-length: 2\r\n\r\nhiBREW /x HTTP/1.1\r\n\r\n";
    let mut reader = BufReader::new(&wire[..]);
    let limits = HttpLimits::default();
    let first = match rulekit_net::parse_request(&mut reader, &limits).unwrap() {
        ParseOutcome::Request(r) => r,
        ParseOutcome::Closed => panic!("first request must parse"),
    };
    assert_eq!(first.body, b"hi");
    let err = rulekit_net::parse_request(&mut reader, &limits).unwrap_err();
    assert_eq!(err.status(), Some(501));
}

#[test]
fn pipelined_body_bytes_are_not_mistaken_for_a_request_line() {
    // The body of the first request *looks like* a request line; exact
    // consumption means it must be read as body, and the real second
    // request parses after it.
    let body = b"GET /fake HTTP/1.1\r\n\r\n";
    let wire = format!(
        "POST /classify HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}GET /health HTTP/1.1\r\n\r\n",
        body.len(),
        String::from_utf8_lossy(body),
    );
    let mut reader = BufReader::new(wire.as_bytes());
    let limits = HttpLimits::default();
    let first = match rulekit_net::parse_request(&mut reader, &limits).unwrap() {
        ParseOutcome::Request(r) => r,
        _ => panic!(),
    };
    assert_eq!(first.path, "/classify");
    assert_eq!(first.body, body);
    let second = match rulekit_net::parse_request(&mut reader, &limits).unwrap() {
        ParseOutcome::Request(r) => r,
        _ => panic!(),
    };
    assert_eq!(second.path, "/health");
}
