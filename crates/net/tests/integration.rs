//! End-to-end integration over a real socket: a durable server classifies
//! concurrent traffic while a rule edit lands (WAL-logged, then visible
//! within one snapshot swap), survives a restart, answers overload with
//! explicit 503s, drains gracefully, and exposes per-route histograms on
//! `/metrics`.

use rulekit_chimera::{Chimera, ChimeraConfig, Decision, SnapshotDecision};
use rulekit_data::{Product, Taxonomy, TypeId, VendorId};
use rulekit_net::{HttpClient, Method, NetConfig, NetServer, RuleApp};
use rulekit_obs::Registry;
use rulekit_serve::{RequestClassifier, RuleService, ServeConfig, StaticProvider};
use rulekit_store::{DurableConfig, MemStorage, Storage};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn ruled_chimera() -> Arc<Chimera> {
    let chimera = Chimera::new(Taxonomy::builtin(), ChimeraConfig::default());
    chimera.add_rules("rings? -> rings\n").unwrap();
    Arc::new(chimera)
}

fn serve_cfg() -> ServeConfig {
    ServeConfig { shards: 2, refresh_interval: Duration::from_millis(10), ..Default::default() }
}

fn client(server: &NetServer) -> HttpClient {
    HttpClient::connect(server.local_addr(), Duration::from_secs(5)).expect("connect")
}

fn classify_body(title: &str) -> String {
    format!("{{\"title\": \"{title}\"}}")
}

/// The acceptance-path test: concurrent clients classify over real sockets
/// while a rule edit lands through the durable CRUD surface; the edit is
/// WAL-logged before the 201 and becomes visible to classify traffic within
/// one snapshot swap, without any client seeing an error.
#[test]
fn concurrent_classify_while_rule_edit_lands() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let app = RuleApp::durable(ruled_chimera(), storage, DurableConfig::default(), serve_cfg())
        .expect("durable app");
    let server = NetServer::start(app, NetConfig::default()).expect("bind");

    // Durable recovery replaces the repository with the WAL state (empty
    // here), so the baseline rule is seeded through the API like any other
    // edit, then polled until the refresher swaps it in.
    let mut c = client(&server);
    let seeded = c.post_json("/rulesets", "{\"rules\": \"rings? -> rings\\n\"}").unwrap();
    assert_eq!(seeded.status, 201, "{}", seeded.text());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let r = c.post_json("/classify", &classify_body("diamond wedding ring")).unwrap();
        assert_eq!(r.status, 200);
        if r.text().contains("\"type\":\"rings\"") {
            break;
        }
        assert!(Instant::now() < deadline, "seed rule never became visible");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Background traffic: four connections, each pipelining classify
    // requests for a title the seed rule matches. Every response must be a
    // 200 naming "rings", before, during, and after the edit.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let addr = server.local_addr();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut client = HttpClient::connect(addr, Duration::from_secs(5)).unwrap();
                let body = classify_body("diamond wedding ring");
                let mut served = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let responses =
                        client.pipeline(Method::Post, "/classify", body.as_bytes(), 8).unwrap();
                    for r in responses {
                        assert_eq!(r.status, 200, "{}", r.text());
                        assert!(r.text().contains("\"type\":\"rings\""), "{}", r.text());
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();

    // Mid-stream: no rule matches sofas yet…
    let before = c.post_json("/classify", &classify_body("leather sofa")).unwrap();
    assert_eq!(before.status, 200);
    assert!(before.text().contains("declined"), "{}", before.text());

    // …then the edit lands through the durable path (201 = WAL-logged).
    let created = c
        .post_json("/rulesets", "{\"rules\": \"sofas? -> sofas\\n\", \"author\": \"ops\"}")
        .unwrap();
    assert_eq!(created.status, 201, "{}", created.text());
    assert!(created.text().contains("\"ids\""), "{}", created.text());

    // The refresher must make it visible within one snapshot swap.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut swapped = false;
    while Instant::now() < deadline {
        let r = c.post_json("/classify", &classify_body("leather sofa")).unwrap();
        assert_eq!(r.status, 200);
        if r.text().contains("\"type\":\"sofas\"") {
            swapped = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(swapped, "rule edit never became visible to classify traffic");

    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: usize = workers.into_iter().map(|w| w.join().expect("worker")).sum();
    assert!(total > 0, "background traffic never ran");

    // CRUD read side sees the edit too.
    let list = c.get("/rulesets").unwrap();
    assert_eq!(list.status, 200);
    assert!(list.text().contains("sofas? -> sofas"), "{}", list.text());
}

/// A rule created over HTTP survives a full server restart: the WAL replays
/// it into the new process before the new server answers traffic.
#[test]
fn rule_edit_is_durable_across_server_restart() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());

    let rule_id;
    {
        let app = RuleApp::durable(
            ruled_chimera(),
            storage.clone(),
            DurableConfig::default(),
            serve_cfg(),
        )
        .unwrap();
        let server = NetServer::start(app, NetConfig::default()).unwrap();
        let mut c = client(&server);
        let created = c.post_json("/rulesets", "{\"rules\": \"sofas? -> sofas\\n\"}").unwrap();
        assert_eq!(created.status, 201, "{}", created.text());
        let body = created.text();
        // `"ids": [N]` — capture the id for the post-restart lookup.
        let ids_at = body.find("\"ids\":[").expect("ids in body") + "\"ids\":[".len();
        rule_id = body[ids_at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse::<u64>()
            .expect("numeric id");
    } // server drains and drops; storage (the "disk") outlives it

    // A fresh chimera (no sofas rule of its own) + the same storage: the
    // WAL must bring the rule back.
    let app =
        RuleApp::durable(ruled_chimera(), storage, DurableConfig::default(), serve_cfg()).unwrap();
    let server = NetServer::start(app, NetConfig::default()).unwrap();
    let mut c = client(&server);

    let rule = c.get(&format!("/rulesets/{rule_id}")).unwrap();
    assert_eq!(rule.status, 200, "{}", rule.text());
    assert!(rule.text().contains("sofas? -> sofas"), "{}", rule.text());

    let r = c.post_json("/classify", &classify_body("leather sofa")).unwrap();
    assert_eq!(r.status, 200);
    assert!(r.text().contains("\"type\":\"sofas\""), "recovered rule must serve: {}", r.text());

    // And the recovered rule deletes cleanly through the durable path.
    let deleted = c.request(Method::Delete, &format!("/rulesets/{rule_id}"), b"").unwrap();
    assert_eq!(deleted.status, 200, "{}", deleted.text());
    let gone = c.get(&format!("/rulesets/{rule_id}")).unwrap();
    assert_eq!(gone.status, 404);
}

/// An expression rule travels the same durable path as every other rule:
/// POSTed through the `expr` field, WAL-logged before the 201, visible to
/// classify traffic (with its numeric predicate enforced), and alive after
/// a full server restart.
#[test]
fn expression_rule_posts_persists_and_survives_restart() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let rule_id;
    {
        let app = RuleApp::durable(
            ruled_chimera(),
            storage.clone(),
            DurableConfig::default(),
            serve_cfg(),
        )
        .unwrap();
        let server = NetServer::start(app, NetConfig::default()).unwrap();
        let mut c = client(&server);

        // Neither "rules" nor "expr" → 422; malformed expression → 422.
        let missing = c.post_json("/rulesets", "{\"author\": \"ops\"}").unwrap();
        assert_eq!(missing.status, 422, "{}", missing.text());
        let bad = c.post_json("/rulesets", "{\"expr\": \"price < => sofas\"}").unwrap();
        assert_eq!(bad.status, 422, "{}", bad.text());

        let created = c
            .post_json("/rulesets", "{\"expr\": \"price < 20 && title ~ /sofa/ => sofas\"}")
            .unwrap();
        assert_eq!(created.status, 201, "{}", created.text());
        let body = created.text();
        let ids_at = body.find("\"ids\":[").expect("ids in body") + "\"ids\":[".len();
        rule_id = body[ids_at..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse::<u64>()
            .expect("numeric id");

        // The stored source carries the `rule:` prefix (round-trippable
        // through any parser), and classify traffic sees the rule within
        // one snapshot swap — numeric predicate included.
        let rule = c.get(&format!("/rulesets/{rule_id}")).unwrap();
        assert!(rule.text().contains("rule: price < 20"), "{}", rule.text());
        let cheap = "{\"title\": \"leather sofa\", \"attributes\": {\"Price\": \"15.99\"}}";
        let pricey = "{\"title\": \"leather sofa\", \"attributes\": {\"Price\": \"899\"}}";
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let r = c.post_json("/classify", cheap).unwrap();
            assert_eq!(r.status, 200);
            if r.text().contains("\"type\":\"sofas\"") {
                break;
            }
            assert!(Instant::now() < deadline, "expression rule never became visible");
            std::thread::sleep(Duration::from_millis(5));
        }
        let r = c.post_json("/classify", pricey).unwrap();
        assert!(r.text().contains("declined"), "price gate ignored: {}", r.text());
    } // server drains; storage outlives it

    // Fresh process, same storage: WAL replay re-compiles the expression.
    let app =
        RuleApp::durable(ruled_chimera(), storage, DurableConfig::default(), serve_cfg()).unwrap();
    let server = NetServer::start(app, NetConfig::default()).unwrap();
    let mut c = client(&server);
    let rule = c.get(&format!("/rulesets/{rule_id}")).unwrap();
    assert_eq!(rule.status, 200, "{}", rule.text());
    assert!(rule.text().contains("price < 20"), "{}", rule.text());
    let cheap = "{\"title\": \"leather sofa\", \"attributes\": {\"Price\": \"15.99\"}}";
    let r = c.post_json("/classify", cheap).unwrap();
    assert_eq!(r.status, 200);
    assert!(
        r.text().contains("\"type\":\"sofas\""),
        "recovered expr rule must serve: {}",
        r.text()
    );
}

/// A classifier that holds every request long enough to back up a
/// one-deep admission queue.
struct SlowClassifier(Duration);

impl RequestClassifier for SlowClassifier {
    fn version(&self) -> u64 {
        1
    }

    fn classify(&self, _product: &Product) -> SnapshotDecision {
        std::thread::sleep(self.0);
        SnapshotDecision {
            decision: Decision::Classified { ty: TypeId(1), confidence: 0.9, explanation: vec![] },
            candidates: 1,
            degraded: false,
        }
    }
}

/// Builds an app whose serving tier is deliberately tiny and slow, so
/// concurrent traffic overruns the admission queue.
fn congested_app(delay: Duration) -> RuleApp {
    let chimera = ruled_chimera();
    let registry = Arc::new(Registry::new());
    let provider = Arc::new(StaticProvider::new(Arc::new(SlowClassifier(delay))));
    let cfg = ServeConfig {
        shards: 1,
        queue_capacity: 1,
        batch_size: 1,
        high_water: 1000,
        low_water: 999,
        ..Default::default()
    };
    let service = RuleService::start_with_registry(provider, cfg, registry.clone());
    RuleApp {
        service,
        store: None,
        rules: chimera.rules.clone(),
        parser: chimera.parser().clone(),
        taxonomy: chimera.taxonomy().clone(),
        registry,
        replication: None,
    }
}

/// Overload is an explicit 503 with the shed counter incrementing — not a
/// hang, not an unbounded buffer.
#[test]
fn overload_surfaces_as_503_and_increments_shed_counter() {
    let app = congested_app(Duration::from_millis(120));
    let server = NetServer::start(app, NetConfig::default()).unwrap();
    let addr = server.local_addr();

    // 8 concurrent single-product classifies against a 1-shard,
    // 1-capacity queue where each item takes 120 ms: most must shed.
    let workers: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = HttpClient::connect(addr, Duration::from_secs(10)).unwrap();
                let r = c.post_json("/classify", &classify_body("diamond ring")).unwrap();
                r.status
            })
        })
        .collect();
    let statuses: Vec<u16> = workers.into_iter().map(|w| w.join().unwrap()).collect();

    assert!(statuses.contains(&200), "someone must be served: {statuses:?}");
    assert!(statuses.contains(&503), "someone must shed: {statuses:?}");
    assert!(statuses.iter().all(|&s| s == 200 || s == 503), "{statuses:?}");

    let shed = server
        .registry()
        .snapshot()
        .counter("rulekit_net_overload_shed_total")
        .expect("shed counter registered");
    assert_eq!(shed, statuses.iter().filter(|&&s| s == 503).count() as u64);

    // The exposition carries it too.
    let mut c = client(&server);
    let metrics = c.get("/metrics").unwrap();
    assert!(metrics.text().contains("rulekit_net_overload_shed_total"), "{}", metrics.text());
}

/// `/metrics` over the socket exposes per-route latency histograms and
/// request counters for the routes traffic actually hit.
#[test]
fn metrics_route_exposes_per_route_histograms() {
    let app = RuleApp::in_memory(ruled_chimera(), serve_cfg());
    let server = NetServer::start(app, NetConfig::default()).unwrap();
    let mut c = client(&server);

    assert_eq!(c.post_json("/classify", &classify_body("ring")).unwrap().status, 200);
    assert_eq!(c.get("/health").unwrap().status, 200);
    assert_eq!(c.get("/rulesets").unwrap().status, 200);

    let text = c.get("/metrics").unwrap().text();
    for route in ["classify", "health", "rulesets_list"] {
        assert!(
            text.contains(&format!("rulekit_net_requests_total{{route=\"{route}\"}}")),
            "missing request counter for {route}:\n{text}"
        );
        assert!(
            text.contains(&format!(
                "rulekit_net_route_latency_nanos{{route=\"{route}\",quantile=\"0.5\"}}"
            )),
            "missing latency histogram for {route}:\n{text}"
        );
    }
    // Serving-tier metrics share the same scrape (one registry).
    assert!(text.contains("rulekit_serve_"), "serve metrics missing from scrape:\n{text}");
    assert!(text.ends_with('\n'), "exposition must end with a newline");
}

/// `/health` reports status, snapshot version, and per-shard queue depths.
#[test]
fn health_reports_shard_depths_and_status() {
    let app = RuleApp::in_memory(ruled_chimera(), serve_cfg());
    let server = NetServer::start(app, NetConfig::default()).unwrap();
    let mut c = client(&server);
    let health = c.get("/health").unwrap();
    assert_eq!(health.status, 200);
    let text = health.text();
    assert!(text.contains("\"status\":\"ok\""), "{text}");
    assert!(text.contains("\"snapshot_version\""), "{text}");
    assert!(text.contains("\"shard_queue_depths\":["), "{text}");
}

/// Graceful drain: in-flight keep-alive connections get a final 503 with
/// `Connection: close`, new connections stop being accepted, and shutdown
/// joins every network thread.
#[test]
fn graceful_drain_stops_accepting_and_flushes() {
    let app = RuleApp::in_memory(ruled_chimera(), serve_cfg());
    let mut server = NetServer::start(app, NetConfig::default()).unwrap();
    let addr = server.local_addr();

    // A live keep-alive session before the drain…
    let mut c = client(&server);
    assert_eq!(c.get("/health").unwrap().status, 200);

    server.shutdown();
    assert!(server.is_draining());

    // …sees an explicit 503 (drain), not a hang, if it asks again.
    // (an Err here means the connection was torn down first — also a valid drain)
    if let Ok(resp) = c.get("/health") {
        assert_eq!(resp.status, 503, "{}", resp.text());
    }

    // New connections are not served: either refused outright or unable
    // to complete a request.
    // (a connect Err means the acceptor is gone — refused outright)
    if let Ok(mut late) = HttpClient::connect(addr, Duration::from_millis(500)) {
        let status = late.get("/health").ok().map(|r| r.status);
        assert!(
            status.is_none() || status == Some(503),
            "post-drain request must not be served: {status:?}"
        );
    }

    // The serving tier itself still runs until the app drops: direct
    // submissions keep working (the three-phase drain's middle state).
    let outcome = server.service().submit(Product {
        id: 1,
        title: "diamond ring".into(),
        description: String::new(),
        attributes: vec![],
        vendor: VendorId(0),
    });
    assert!(matches!(outcome, rulekit_serve::Admission::Enqueued(_)));
}

/// The opt-in retry satellite: a 503 with `Connection: close` is retried
/// after a jittered backoff on a fresh connection, and a refused connect is
/// retried until the listener comes up. Raw-socket fakes keep both halves
/// deterministic.
#[test]
fn client_retry_rides_out_503_and_refused_connect() {
    use rulekit_net::RetryPolicy;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    let policy = RetryPolicy {
        max_attempts: 6,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(40),
        seed: 11,
    };

    // Half 1: 503 then success. The fake server sheds the first request
    // with a closing 503, serves the retry on the next connection.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let mut buf = [0u8; 4096];
        let (mut s, _) = listener.accept().unwrap();
        let _ = s.read(&mut buf);
        s.write_all(
            b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
        drop(s);
        let (mut s, _) = listener.accept().unwrap();
        let _ = s.read(&mut buf);
        s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok").unwrap();
    });
    let mut c = HttpClient::connect(addr, Duration::from_secs(5)).unwrap();
    let resp = c.request_with_retry(Method::Get, "/health", b"", &policy).unwrap();
    assert_eq!(resp.status, 200, "retry must land on the recovered server");
    assert_eq!(resp.text(), "ok");
    fake.join().unwrap();

    // A plain request (no retry) through the non-retry path still sees the
    // 503 — retry stays opt-in. (Fresh fake: one shedding connection.)
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr2 = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let mut buf = [0u8; 4096];
        let (mut s, _) = listener.accept().unwrap();
        let _ = s.read(&mut buf);
        s.write_all(
            b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        )
        .unwrap();
    });
    let mut plain = HttpClient::connect(addr2, Duration::from_secs(5)).unwrap();
    assert_eq!(plain.get("/health").unwrap().status, 503);
    fake.join().unwrap();

    // Half 2: connect_with_retry against a port that only starts listening
    // after a delay (SO_REUSEADDR makes the rebind race-free on the same
    // ephemeral port once the first listener drops).
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr3 = listener.local_addr().unwrap();
    drop(listener);
    assert!(
        HttpClient::connect(addr3, Duration::from_secs(1)).is_err(),
        "precondition: nobody listening"
    );
    let late = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(60));
        let listener = TcpListener::bind(addr3).unwrap();
        let (mut s, _) = listener.accept().unwrap();
        let mut buf = [0u8; 4096];
        let _ = s.read(&mut buf);
        s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n").unwrap();
    });
    let generous = RetryPolicy { max_attempts: 40, ..policy };
    let mut c = HttpClient::connect_with_retry(addr3, Duration::from_secs(1), &generous).unwrap();
    assert_eq!(c.get("/health").unwrap().status, 200);
    late.join().unwrap();
}

/// The inference-tier CRUD path: an `infer:` fact rule and an expression
/// rule gated on the derived fact post through `/rulesets` in one body,
/// WAL-log like any other rule, drive classify traffic, and both survive a
/// full server restart.
#[test]
fn infer_rule_posts_derives_and_survives_restart() {
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let item = "{\"title\": \"mystery item\", \"attributes\": {\"ISBN\": \"9781234567890\"}}";
    {
        let app = RuleApp::durable(
            ruled_chimera(),
            storage.clone(),
            DurableConfig::default(),
            serve_cfg(),
        )
        .unwrap();
        let server = NetServer::start(app, NetConfig::default()).unwrap();
        let mut c = client(&server);

        // Malformed consequent → typed 422, nothing stored.
        let bad = c.post_json("/rulesets", "{\"infer\": \"has(isbn) => media = book\"}").unwrap();
        assert_eq!(bad.status, 422, "{}", bad.text());

        // A fact rule plus a classification rule that only its derived
        // fact can trigger, in one atomic POST.
        let created = c
            .post_json(
                "/rulesets",
                "{\"infer\": \"has(isbn) => fact media = book\", \
                  \"expr\": \"media == \\\"book\\\" => books\"}",
            )
            .unwrap();
        assert_eq!(created.status, 201, "{}", created.text());

        // Both rules list with their round-trippable prefixes.
        let list = c.get("/rulesets").unwrap();
        assert!(list.text().contains("infer: has(isbn)"), "{}", list.text());
        assert!(list.text().contains("rule: media =="), "{}", list.text());

        // Classification sees the derived fact within one snapshot swap.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let r = c.post_json("/classify", item).unwrap();
            assert_eq!(r.status, 200);
            if r.text().contains("\"type\":\"books\"") {
                break;
            }
            assert!(Instant::now() < deadline, "derived fact never drove a decision");
            std::thread::sleep(Duration::from_millis(5));
        }
    } // server drains; storage outlives it

    // Fresh process, same storage: WAL replay re-compiles the fact rule
    // from its source text and inference resumes immediately.
    let app =
        RuleApp::durable(ruled_chimera(), storage, DurableConfig::default(), serve_cfg()).unwrap();
    let server = NetServer::start(app, NetConfig::default()).unwrap();
    let mut c = client(&server);
    let r = c.post_json("/classify", item).unwrap();
    assert_eq!(r.status, 200);
    assert!(
        r.text().contains("\"type\":\"books\""),
        "recovered infer rule must serve: {}",
        r.text()
    );
}
