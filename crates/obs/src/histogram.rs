//! Log-linear histogram: HdrHistogram's bucketing scheme reduced to the
//! essentials, on plain atomics.
//!
//! Values below [`SUB_BUCKETS`] get an exact bucket each; every octave
//! above that is split into [`SUB_BUCKETS`] linear sub-buckets, so a
//! bucket's bounds are never more than `1/SUB_BUCKETS` (6.25%) apart in
//! relative terms. That gives quantile estimates with bounded relative
//! error over the full `u64` range out of ~1k buckets (≈8 KiB).
//!
//! Recording is allocation-free and lock-free: one relaxed `fetch_add` on
//! the bucket, one on the running sum, one relaxed `fetch_max` on the
//! maximum. There is deliberately no separate total-count cell — the count
//! *is* the sum of bucket counts, so "count equals sum of buckets" holds by
//! construction no matter how reads interleave with concurrent writers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Linear sub-buckets per octave; also the top of the exact range.
pub const SUB_BUCKETS: u64 = 16;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros(); // 4

/// 16 exact buckets + 16 per octave for magnitudes 4..=63.
const BUCKETS: usize = (SUB_BUCKETS + (64 - SUB_BITS as u64) * SUB_BUCKETS) as usize;

/// Index of the bucket holding `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        return v as usize;
    }
    let mag = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = (v >> (mag - SUB_BITS)) - SUB_BUCKETS;
    ((u64::from(mag) - u64::from(SUB_BITS)) * SUB_BUCKETS + SUB_BUCKETS + sub) as usize
}

/// Inclusive `(lower, upper)` value bounds of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if (i as u64) < SUB_BUCKETS {
        return (i as u64, i as u64);
    }
    let mag = (i as u64 - SUB_BUCKETS) / SUB_BUCKETS + u64::from(SUB_BITS);
    let sub = (i as u64 - SUB_BUCKETS) % SUB_BUCKETS;
    let shift = (mag - u64::from(SUB_BITS)) as u32;
    let lower = (SUB_BUCKETS + sub) << shift;
    let width = 1u64 << shift;
    (lower, lower + (width - 1))
}

struct HistogramCore {
    counts: Box<[AtomicU64; BUCKETS]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        // Box the array directly from a Vec to keep the 8 KiB off the stack.
        let counts: Box<[AtomicU64; BUCKETS]> = (0..BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("BUCKETS-sized vec"));
        HistogramCore { counts, sum: AtomicU64::new(0), max: AtomicU64::new(0) }
    }
}

/// A shareable log-linear histogram handle. Cloning shares the buckets.
#[derive(Clone, Default)]
pub struct Histogram {
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one value. Lock-free, allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.core.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.core.sum.fetch_add(v, Ordering::Relaxed);
        self.core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating past ~584 years).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of recorded values (sum of bucket counts).
    pub fn count(&self) -> u64 {
        self.core.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.core.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.core.max.load(Ordering::Relaxed)
    }

    /// Conservative quantile estimate; see [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.snapshot().mean()
    }

    /// Folds another histogram's counts into this one. Equivalent (bucket
    /// by bucket) to having recorded both streams into one histogram.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.core.counts.iter().zip(other.core.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.core.sum.fetch_add(other.core.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.core.max.fetch_max(other.core.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// An immutable point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, c) in self.core.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        HistogramSnapshot {
            buckets,
            sum: self.core.sum.load(Ordering::Relaxed),
            max: self.core.max.load(Ordering::Relaxed),
        }
    }
}

/// Frozen histogram state: the non-empty buckets plus sum and max.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(u32, u64)>,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|&(_, n)| n).sum()
    }

    /// Inclusive value bounds of the bucket holding the rank-`q` sample.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        let total = self.count();
        if total == 0 {
            return (0, 0);
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_bounds(i as usize);
            }
        }
        bucket_bounds(self.buckets.last().map_or(0, |&(i, _)| i as usize))
    }

    /// Conservative quantile estimate (`q` in `[0, 1]`): the upper bound of
    /// the bucket holding the rank-`q` sample, clamped to the observed
    /// maximum — never under-reports, and over-reports by at most one part
    /// in [`SUB_BUCKETS`].
    pub fn quantile(&self, q: f64) -> u64 {
        let (_, upper) = self.quantile_bounds(q);
        upper.min(self.max)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count()).unwrap_or(0)
    }

    /// Bucket-wise sum of two snapshots.
    pub fn merge(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: Vec<(u32, u64)> = Vec::with_capacity(a.buckets.len() + b.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < a.buckets.len() || j < b.buckets.len() {
            match (a.buckets.get(i), b.buckets.get(j)) {
                (Some(&(ia, na)), Some(&(ib, _))) if ia < ib => {
                    buckets.push((ia, na));
                    i += 1;
                }
                (Some(&(ia, _)), Some(&(ib, nb))) if ib < ia => {
                    buckets.push((ib, nb));
                    j += 1;
                }
                (Some(&(ia, na)), Some(&(_, nb))) => {
                    buckets.push((ia, na + nb));
                    i += 1;
                    j += 1;
                }
                (Some(&(ia, na)), None) => {
                    buckets.push((ia, na));
                    i += 1;
                }
                (None, Some(&(ib, nb))) => {
                    buckets.push((ib, nb));
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        // Wrapping, to match live recording: `Histogram::record` accumulates
        // the sum with atomic fetch_add, which wraps on overflow.
        HistogramSnapshot { buckets, sum: a.sum.wrapping_add(b.sum), max: a.max.max(b.max) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_ordered() {
        // Every value maps into a bucket whose bounds contain it, and bucket
        // indices are monotone in the value.
        let mut values: Vec<u64> = (0..64u32)
            .flat_map(|shift| [0u64, 1, 7].map(|off| (1u64 << shift).saturating_add(off)))
            .collect();
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "v={v} bucket={i} bounds=({lo},{hi})");
            assert!(i >= last, "index regressed at v={v}");
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn exact_below_sub_buckets() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_bounds(bucket_index(v)), (v, v));
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for shift in SUB_BITS..63 {
            let v = (1u64 << shift) + (1u64 << shift.saturating_sub(1));
            let (lo, hi) = bucket_bounds(bucket_index(v));
            let width = (hi - lo) as f64;
            assert!(width / lo as f64 <= 1.0 / SUB_BUCKETS as f64 + 1e-9, "v={v}");
        }
    }

    #[test]
    fn quantiles_never_under_report() {
        let h = Histogram::new();
        let values = [3u64, 17, 170, 1700, 17_000, 1_700_000];
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), values.iter().sum::<u64>());
        assert_eq!(h.max(), 1_700_000);
        assert!(h.quantile(0.5) >= 170);
        assert!(h.quantile(1.0) >= 1_700_000);
        assert_eq!(h.quantile(1.0), 1_700_000, "p100 clamps to observed max");
        assert!(h.quantile(0.0) >= 3);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn merge_from_equals_combined_recording() {
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [1u64, 5, 900, 40_000] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 5, 1_000_000] {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), both.snapshot());
        assert_eq!(
            HistogramSnapshot::merge(&b.snapshot(), &Histogram::new().snapshot()),
            b.snapshot()
        );
    }
}
