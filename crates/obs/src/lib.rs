//! # rulekit-obs
//!
//! The observability substrate the paper's operational loop assumes:
//! Chimera's operators "monitor the system's precision/recall continuously
//! and intervene when it drifts" (§3.3), and none of that is possible
//! without a metrics surface that the serving, execution, and durability
//! layers can record into without slowing down.
//!
//! Design constraints, in order:
//!
//! 1. **Wait-free recording.** Counters and histogram recording are plain
//!    relaxed atomic adds — no locks, no CAS loops on the count path — so
//!    instrumentation can sit inside the rule-execution hot loop without
//!    disturbing the literal-scan throughput numbers.
//! 2. **No dependencies.** Only `std`; the crate sits below everything else
//!    in the workspace and can be pulled in anywhere.
//! 3. **Sharded registration.** The name→metric map is sharded and only
//!    touched at registration/snapshot time; steady-state recording goes
//!    through pre-registered handles ([`Counter`], [`Gauge`],
//!    [`Histogram`]) that are a couple of `Arc` hops from the atomics.
//!
//! The pieces:
//!
//! * [`Registry`] — get-or-register metrics by name, snapshot them all;
//! * [`Counter`] — monotone, cache-line-striped to absorb multi-writer
//!   contention;
//! * [`Gauge`] — signed level (queue depths, recovered-entry counts);
//! * [`Histogram`] — log-linear value distribution with p50/p95/p99/max
//!   readout, bounded relative error, lossless merge;
//! * [`SpanTimer`] — RAII stage timer recording elapsed nanoseconds into a
//!   histogram on drop;
//! * [`MetricsSnapshot`] — point-in-time view with a Prometheus-style
//!   [`MetricsSnapshot::render_text`] exposition.

pub mod histogram;
pub mod metric;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use histogram::{Histogram, HistogramSnapshot, SUB_BUCKETS};
pub use metric::{Counter, Gauge};
pub use registry::Registry;
pub use snapshot::{MetricValue, MetricsSnapshot};
pub use span::SpanTimer;
