//! Counters and gauges: the scalar metrics.
//!
//! [`Counter`] is striped across cache-line-padded atomic cells so that N
//! writer threads hammering the same counter don't serialize on one cache
//! line; each thread picks a stripe once (thread-local) and sticks to it.
//! Reads sum the stripes — each stripe is monotone, and a reader's
//! successive loads of the same atomic respect coherence order, so summed
//! snapshots are monotone too.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Stripes per counter. Eight padded cells absorb the writer counts the
/// serving tier runs (shards default to 4) without wasting much memory on
/// single-writer metrics.
pub(crate) const STRIPES: usize = 8;

/// One cache line worth of counter so two stripes never false-share.
#[repr(align(64))]
#[derive(Default)]
pub(crate) struct PaddedU64(pub(crate) AtomicU64);

thread_local! {
    /// This thread's stripe index, assigned round-robin at first use.
    static STRIPE: usize = {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES
    };
}

pub(crate) fn stripe_index() -> usize {
    STRIPE.with(|s| *s)
}

#[derive(Default)]
pub(crate) struct CounterCore {
    stripes: [PaddedU64; STRIPES],
}

impl CounterCore {
    pub(crate) fn add(&self, n: u64) {
        self.stripes[stripe_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn value(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A monotone counter handle. Cloning shares the underlying cells; all
/// mutation is wait-free.
#[derive(Clone, Default)]
pub struct Counter {
    pub(crate) core: Arc<CounterCore>,
}

impl Counter {
    /// A counter not attached to any registry (tests, ad-hoc accounting).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.core.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.core.add(n);
    }

    /// Current total across stripes.
    pub fn value(&self) -> u64 {
        self.core.value()
    }
}

#[derive(Default)]
pub(crate) struct GaugeCore {
    value: AtomicI64,
}

/// A signed level metric: queue depth, entries recovered, bytes resident.
/// Unlike [`Counter`], a gauge can go down and can be `set` outright —
/// which is exactly what makes replayed recovery idempotent: recovery
/// *sets* level metrics from recovered state instead of re-incrementing
/// them.
#[derive(Clone, Default)]
pub struct Gauge {
    pub(crate) core: Arc<GaugeCore>,
}

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Adds `n` (possibly negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.core.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Replaces the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.core.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is below it (high-water marks).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.core.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.core.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_clones() {
        let c = Counter::new();
        let c2 = c.clone();
        c.inc();
        c2.add(4);
        assert_eq!(c.value(), 5);
        assert_eq!(c2.value(), 5);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(10);
        g.dec();
        assert_eq!(g.value(), 9);
        g.set(-3);
        assert_eq!(g.value(), -3);
        g.set_max(7);
        g.set_max(2);
        assert_eq!(g.value(), 7);
    }
}
