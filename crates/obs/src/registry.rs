//! The sharded metrics registry: name → metric, get-or-register semantics.
//!
//! Registration and snapshotting take a shard lock; steady-state recording
//! never does — callers hold the returned [`Counter`]/[`Gauge`]/
//! [`Histogram`] handles, which reach the atomics directly. Names follow
//! the Prometheus convention (`subsystem_metric_unit`, optional
//! `{label="value"}` suffix); the registry treats the full string as the
//! identity.

use crate::histogram::Histogram;
use crate::metric::{Counter, Gauge};
use crate::snapshot::{MetricValue, MetricsSnapshot};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

const SHARDS: usize = 8;

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A registry of named metrics, sharded by name hash so concurrent
/// registration from many subsystems doesn't serialize.
#[derive(Default)]
pub struct Registry {
    shards: [Mutex<HashMap<String, Metric>>; SHARDS],
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Metric>> {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.shard(name).lock().unwrap_or_else(|e| e.into_inner());
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.get_or_insert(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.get_or_insert(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.get_or_insert(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// A point-in-time snapshot of every registered metric, sorted by name.
    /// Counter and histogram values are monotone across successive
    /// snapshots taken by one reader (atomic coherence: a later load never
    /// observes an earlier value).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut metrics: Vec<(String, MetricValue)> = Vec::new();
        for shard in &self.shards {
            let map = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (name, metric) in map.iter() {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.value()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                metrics.push((name.clone(), value));
            }
        }
        metrics.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { metrics }
    }

    /// Prometheus-style text exposition of [`Registry::snapshot`].
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_metric() {
        let r = Registry::new();
        r.counter("a_total").inc();
        r.counter("a_total").inc();
        assert_eq!(r.counter("a_total").value(), 2);
        r.gauge("b").set(5);
        assert_eq!(r.gauge("b").value(), 5);
        r.histogram("c_nanos").record(7);
        assert_eq!(r.histogram("c_nanos").count(), 1);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.gauge("x");
        r.counter("x");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("z_total").add(3);
        r.gauge("a_depth").set(-2);
        r.histogram("m_nanos").record(100);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a_depth", "m_nanos", "z_total"]);
        assert_eq!(snap.counter("z_total"), Some(3));
        assert_eq!(snap.gauge("a_depth"), Some(-2));
        assert_eq!(snap.histogram("m_nanos").map(|h| h.count()), Some(1));
    }
}
