//! Point-in-time registry state and its text exposition.

use crate::histogram::HistogramSnapshot;
use std::fmt::Write as _;

/// One metric's frozen value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter total.
    Counter(u64),
    /// Signed gauge level.
    Gauge(i64),
    /// Full distribution.
    Histogram(HistogramSnapshot),
}

/// Everything a [`crate::Registry`] held at snapshot time, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, ascending by name.
    pub metrics: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    fn find(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// The counter registered as `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.find(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// The gauge registered as `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.find(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// The histogram registered as `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.find(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Prometheus-style text exposition: counters and gauges as single
    /// samples, histograms as quantile-labelled summaries plus
    /// `_count`/`_sum`/`_max` samples. Label *values* in metric-name
    /// suffixes (`name{shard="0"}`) are escaped per the text format
    /// (`\\`, `\"`, `\n`); one `# TYPE` line is emitted per metric family,
    /// not per labelled series, and the exposition always ends with a
    /// newline so scrapers that lint for an unterminated final line accept
    /// it.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut typed: std::collections::HashSet<&str> = std::collections::HashSet::new();
        for (name, value) in &self.metrics {
            // `name{label="v"}` → base name for TYPE lines and suffixing.
            let (base, raw_labels) = match name.find('{') {
                Some(i) => (&name[..i], &name[i..]),
                None => (name.as_str(), ""),
            };
            let inner =
                escape_label_values(raw_labels.trim_start_matches('{').trim_end_matches('}'));
            let labels = if inner.is_empty() { String::new() } else { format!("{{{inner}}}") };
            let mut type_line = |out: &mut String, kind: &str| {
                if typed.insert(base) {
                    let _ = writeln!(out, "# TYPE {base} {kind}");
                }
            };
            match value {
                MetricValue::Counter(v) => {
                    type_line(&mut out, "counter");
                    let _ = writeln!(out, "{base}{labels} {v}");
                }
                MetricValue::Gauge(v) => {
                    type_line(&mut out, "gauge");
                    let _ = writeln!(out, "{base}{labels} {v}");
                }
                MetricValue::Histogram(h) => {
                    type_line(&mut out, "summary");
                    for q in [0.5, 0.95, 0.99] {
                        let sep = if inner.is_empty() { "" } else { "," };
                        let _ = writeln!(
                            out,
                            "{base}{{{inner}{sep}quantile=\"{q}\"}} {}",
                            h.quantile(q)
                        );
                    }
                    let _ = writeln!(out, "{base}_max{labels} {}", h.max);
                    let _ = writeln!(out, "{base}_count{labels} {}", h.count());
                    let _ = writeln!(out, "{base}_sum{labels} {}", h.sum);
                }
            }
        }
        if !out.ends_with('\n') {
            out.push('\n');
        }
        out
    }
}

/// Escapes label *values* inside a brace-stripped label block
/// (`key="value",key2="value2"`) per the Prometheus text format: backslash,
/// double-quote, and newline become `\\`, `\"`, and `\n`. Keys and the
/// `key="…"` structure pass through untouched. A `"` inside a value is
/// recognized as the closing quote only when followed by `,` or the end of
/// the block, so raw (unescaped) quotes in registered label values render
/// as `\"` instead of corrupting the exposition.
fn escape_label_values(inner: &str) -> String {
    let mut out = String::with_capacity(inner.len());
    let chars: Vec<char> = inner.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        // Key, up to '='.
        while i < chars.len() && chars[i] != '=' {
            out.push(chars[i]);
            i += 1;
        }
        if i < chars.len() {
            out.push('=');
            i += 1;
        }
        // Quoted value.
        if i < chars.len() && chars[i] == '"' {
            out.push('"');
            i += 1;
            while i < chars.len() {
                let c = chars[i];
                if c == '"' && (i + 1 == chars.len() || chars[i + 1] == ',') {
                    break;
                }
                match c {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    _ => out.push(c),
                }
                i += 1;
            }
            if i < chars.len() {
                out.push('"');
                i += 1;
            }
        }
        if i < chars.len() && chars[i] == ',' {
            out.push(',');
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    #[test]
    fn render_text_exposes_all_kinds() {
        let r = Registry::new();
        r.counter("req_total").add(9);
        r.gauge("queue_depth{shard=\"1\"}").set(4);
        let h = r.histogram("latency_nanos");
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let text = r.render_text();
        assert!(text.contains("# TYPE req_total counter"), "{text}");
        assert!(text.contains("req_total 9"), "{text}");
        assert!(text.contains("# TYPE queue_depth gauge"), "{text}");
        assert!(text.contains("queue_depth{shard=\"1\"} 4"), "{text}");
        assert!(text.contains("latency_nanos{quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("latency_nanos_count 3"), "{text}");
        assert!(text.contains("latency_nanos_sum 600"), "{text}");
        assert!(text.contains("latency_nanos_max 300"), "{text}");
    }

    #[test]
    fn labelled_histograms_merge_label_sets() {
        let r = Registry::new();
        r.histogram("lat{shard=\"2\"}").record(50);
        let text = r.render_text();
        assert!(text.contains("lat{shard=\"2\",quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("lat_count{shard=\"2\"} 1"), "{text}");
    }

    #[test]
    fn type_line_appears_once_per_family() {
        let r = Registry::new();
        for shard in 0..4 {
            r.gauge(&format!("depth{{shard=\"{shard}\"}}")).set(shard);
        }
        // A distinct family whose name sorts between the bare base and the
        // labelled series must not break the dedup.
        r.gauge("depth_max").set(9);
        let text = r.render_text();
        assert_eq!(text.matches("# TYPE depth gauge\n").count(), 1, "{text}");
        assert_eq!(text.matches("# TYPE depth_max gauge\n").count(), 1, "{text}");
    }

    #[test]
    fn label_values_are_escaped_and_output_ends_with_newline() {
        let r = Registry::new();
        r.counter("hits{path=\"a\\b\"}").inc();
        r.gauge("depth{note=\"say \"hi\"\"}").set(2);
        r.histogram("lat{src=\"line\none\"}").record(7);
        let text = r.render_text();
        assert!(text.contains("hits{path=\"a\\\\b\"} 1"), "{text}");
        assert!(text.contains("depth{note=\"say \\\"hi\\\"\"} 2"), "{text}");
        assert!(text.contains("lat{src=\"line\\none\",quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("lat_count{src=\"line\\none\"} 1"), "{text}");
        assert!(text.ends_with('\n'), "exposition must end with a newline");
        // No raw (unescaped) newline may survive inside any sample line.
        for line in text.lines() {
            assert!(!line.contains("line\none"), "{line}");
        }
    }

    #[test]
    fn empty_snapshot_still_renders_terminated_output() {
        let r = Registry::new();
        assert!(r.render_text().ends_with('\n'));
    }

    #[test]
    fn lookups_hit_by_exact_name() {
        let r = Registry::new();
        r.counter("a").inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("a"), Some(1));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("a"), None, "kind mismatch reads as absent");
    }
}
