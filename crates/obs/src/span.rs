//! Span timers: structured per-stage tracing that costs one `Instant::now`
//! at each end and one histogram record, with no allocation.
//!
//! A [`SpanTimer`] is deliberately *not* a distributed-tracing span — no
//! ids, no context propagation. It is the part the pipeline actually
//! needs: "how long did the gate-keeper stage take on this product",
//! recorded into a per-stage latency histogram whose quantiles the
//! operator dashboards read.

use crate::histogram::Histogram;
use std::time::Instant;

/// RAII stage timer: records elapsed nanoseconds into its histogram when
/// dropped (or earlier, via [`SpanTimer::finish`]).
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    start: Instant,
    done: bool,
}

impl<'a> SpanTimer<'a> {
    /// Starts timing against `hist`.
    pub fn start(hist: &'a Histogram) -> SpanTimer<'a> {
        SpanTimer { hist, start: Instant::now(), done: false }
    }

    /// Stops the timer and records, returning the elapsed nanoseconds.
    pub fn finish(mut self) -> u64 {
        self.done = true;
        let nanos = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.hist.record(nanos);
        nanos
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.hist.record_duration(self.start.elapsed());
        }
    }
}

/// Times `f` against `hist` and passes its value through.
#[inline]
pub fn timed<R>(hist: &Histogram, f: impl FnOnce() -> R) -> R {
    let span = SpanTimer::start(hist);
    let out = f();
    span.finish();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn span_records_on_drop_and_on_finish() {
        let h = Histogram::new();
        {
            let _span = SpanTimer::start(&h);
            std::thread::sleep(Duration::from_millis(1));
        }
        let explicit = {
            let span = SpanTimer::start(&h);
            std::thread::sleep(Duration::from_millis(1));
            span.finish()
        };
        assert_eq!(h.count(), 2);
        assert!(explicit >= 1_000_000, "slept ≥1ms, recorded {explicit}ns");
        assert!(h.quantile(1.0) >= 1_000_000);
    }

    #[test]
    fn timed_passes_value_through() {
        let h = Histogram::new();
        let v = timed(&h, || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(h.count(), 1);
    }
}
