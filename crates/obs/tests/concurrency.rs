//! Concurrency guarantees of the metrics surface: writer threads hammer
//! counters and histograms while a reader takes snapshots; no increment may
//! be lost, and a single reader's successive snapshots must be monotone.

use rulekit_obs::{Registry, SUB_BUCKETS};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const WRITERS: usize = 8;
const INCREMENTS: u64 = 50_000;

#[test]
fn no_lost_increments_and_monotone_snapshots() {
    let registry = Arc::new(Registry::new());
    let counter = registry.counter("hammer_total");
    let hist = registry.histogram("hammer_values");
    let gauge = registry.gauge("hammer_level");
    let stop = Arc::new(AtomicBool::new(false));

    // Reader: snapshot continuously; counter totals and histogram counts
    // must never move backwards between successive reads.
    let reader = {
        let registry = Arc::clone(&registry);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let (mut last_count, mut last_hist, mut last_sum, mut snapshots) =
                (0u64, 0u64, 0u64, 0u64);
            while !stop.load(Ordering::Acquire) {
                let snap = registry.snapshot();
                let count = snap.counter("hammer_total").expect("registered");
                let h = snap.histogram("hammer_values").expect("registered");
                let (hist_count, hist_sum) = (h.count(), h.sum);
                assert!(count >= last_count, "counter regressed: {count} < {last_count}");
                assert!(hist_count >= last_hist, "histogram count regressed");
                assert!(hist_sum >= last_sum, "histogram sum regressed");
                // Mid-flight invariant: count is DEFINED as the bucket sum,
                // so it can never disagree with the buckets it came from.
                assert_eq!(hist_count, h.buckets.iter().map(|&(_, n)| n).sum::<u64>());
                (last_count, last_hist, last_sum) = (count, hist_count, hist_sum);
                snapshots += 1;
            }
            snapshots
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let counter = counter.clone();
            let hist = hist.clone();
            let gauge = gauge.clone();
            thread::spawn(move || {
                for i in 0..INCREMENTS {
                    counter.inc();
                    // Values spread across exact and log-linear buckets.
                    hist.record((w as u64 + 1) * (i % (SUB_BUCKETS * 40) + 1));
                    gauge.set_max((w as u64 * INCREMENTS / 2 + i) as i64);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    stop.store(true, Ordering::Release);
    let snapshots = reader.join().expect("reader");
    assert!(snapshots > 0, "reader never snapshotted");

    // After the join, every single increment is visible: nothing lost to
    // striping, relaxed ordering, or reader interference.
    let total = (WRITERS as u64) * INCREMENTS;
    assert_eq!(counter.value(), total);
    assert_eq!(hist.count(), total);
    let final_snap = registry.snapshot();
    assert_eq!(final_snap.counter("hammer_total"), Some(total));
    assert_eq!(final_snap.histogram("hammer_values").map(|h| h.count()), Some(total));
    assert!(final_snap.gauge("hammer_level").unwrap() > 0);
}

#[test]
fn concurrent_registration_yields_one_metric_per_name() {
    // Many threads race get-or-register on the same names; all must end up
    // sharing one underlying metric per name.
    let registry = Arc::new(Registry::new());
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                for i in 0..100 {
                    registry.counter(&format!("shared_{}_total", i % 10)).inc();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("registrar");
    }
    let snap = registry.snapshot();
    assert_eq!(snap.metrics.len(), 10, "exactly one metric per distinct name");
    for i in 0..10 {
        assert_eq!(snap.counter(&format!("shared_{i}_total")), Some(80));
    }
}
