//! Property tests for the log-linear histogram: the structural invariants
//! (count ≡ bucket sum), quantile bracketing with bounded relative error,
//! and merge ≡ combined recording, over randomly generated value streams.

use proptest::prelude::*;
use rulekit_obs::{Histogram, HistogramSnapshot, SUB_BUCKETS};

/// The sorted-rank value the quantile estimate must bracket, matching the
/// histogram's rank rule: `rank = max(1, ceil(q * n))`, 1-based.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn count_is_sum_of_bucket_counts(values in prop::collection::vec(0u64..u64::MAX, 1..300)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        let bucket_sum: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(snap.count(), bucket_sum);
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
        // Sum and max reflect the stream exactly (no bucket rounding).
        let mut exact_sum = 0u64;
        for &v in &values {
            exact_sum = exact_sum.wrapping_add(v);
        }
        prop_assert_eq!(snap.sum, exact_sum);
        prop_assert_eq!(snap.max, values.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn quantiles_bracket_true_values_within_bucket_error(
        values in prop::collection::vec(0u64..1_000_000_000, 1..300),
        q_millis in prop::collection::vec(0u64..=1000, 1..8),
    ) {
        let qs: Vec<f64> = q_millis.iter().map(|&m| m as f64 / 1000.0).collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        for &q in &qs {
            let truth = true_quantile(&sorted, q);
            let (lo, hi) = snap.quantile_bounds(q);
            prop_assert!(lo <= truth && truth <= hi,
                "q={} truth={} outside bucket bounds ({}, {})", q, truth, lo, hi);
            let estimate = snap.quantile(q);
            // Conservative: never under-reports…
            prop_assert!(estimate >= truth, "q={}: estimate {} < true {}", q, estimate, truth);
            // …and over-reports by at most one bucket width (≤ 1/SUB_BUCKETS
            // relative, with an absolute floor of 1 in the exact range).
            let slack = truth / SUB_BUCKETS + 1;
            prop_assert!(estimate - truth <= slack,
                "q={}: estimate {} too far above true {}", q, estimate, truth);
        }
    }

    #[test]
    fn merge_equals_recording_both_streams(
        a_values in prop::collection::vec(0u64..u64::MAX, 0..200),
        b_values in prop::collection::vec(0u64..u64::MAX, 0..200),
    ) {
        let (a, b, both) = (Histogram::new(), Histogram::new(), Histogram::new());
        for &v in &a_values {
            a.record(v);
            both.record(v);
        }
        for &v in &b_values {
            b.record(v);
            both.record(v);
        }
        // Snapshot-level merge…
        let merged = HistogramSnapshot::merge(&a.snapshot(), &b.snapshot());
        prop_assert_eq!(&merged, &both.snapshot());
        // …and handle-level fold agree with single-stream recording,
        // including derived quantiles.
        a.merge_from(&b);
        prop_assert_eq!(a.snapshot(), both.snapshot());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), both.quantile(q));
        }
    }
}
