//! Multi-pattern literal matching: a from-scratch Aho-Corasick automaton.
//!
//! The rule index (§4 "Rule Execution and Optimization") reduces "which of
//! 10⁵ rules could fire on this title?" to "which required literals occur in
//! this title?". Answering that one literal at a time (`contains` per rule,
//! or a trigram probe per window) pays per-rule or per-window costs; an
//! Aho-Corasick automaton answers it for *every* literal of *every* rule in
//! a single left-to-right scan of the title, worst-case linear in
//! `title.len() + matches`.
//!
//! The implementation is the textbook construction: a byte-trie over the
//! patterns, failure links computed breadth-first, and per-node output sets
//! pre-merged along the failure chain so reporting a match never walks
//! links. The root's transitions are densified into a 256-entry table
//! because almost every byte of a title restarts there.

/// A compiled set of literal patterns supporting one-pass scanning.
///
/// Patterns are matched as raw byte substrings (callers wanting
/// case-insensitivity lowercase both sides). Duplicate patterns are allowed
/// and report their own ids. Empty patterns are rejected at build time.
pub struct AhoCorasick {
    /// Sparse transitions per node: sorted by byte for binary search.
    trans: Vec<Vec<(u8, u32)>>,
    /// Failure link per node (root's is root).
    fail: Vec<u32>,
    /// Pattern ids ending at each node, pre-merged with the failure chain.
    out: Vec<Vec<u32>>,
    /// Dense transition table for the root node.
    root_dense: [u32; 256],
    /// Number of patterns compiled in.
    patterns: usize,
    /// Length of each pattern in bytes (for match spans).
    pattern_len: Vec<u32>,
}

const ROOT: u32 = 0;

impl AhoCorasick {
    /// Builds the automaton over `patterns`.
    ///
    /// # Panics
    /// Panics if any pattern is empty — an empty required literal carries no
    /// information and would match at every position.
    pub fn new<I, P>(patterns: I) -> AhoCorasick
    where
        I: IntoIterator<Item = P>,
        P: AsRef<str>,
    {
        // Pre-size every per-state vector from the literal stats: total
        // pattern bytes bound the state count (shared prefixes only shrink
        // it), so at 100k-rule scale the build never reallocates the spine
        // vectors mid-insertion.
        let patterns: Vec<P> = patterns.into_iter().collect();
        let total_bytes: usize = patterns.iter().map(|p| p.as_ref().len()).sum();
        let state_cap = total_bytes + 1;
        let mut ac = AhoCorasick {
            trans: Vec::with_capacity(state_cap),
            fail: Vec::with_capacity(state_cap),
            out: Vec::with_capacity(state_cap),
            root_dense: [ROOT; 256],
            patterns: 0,
            pattern_len: Vec::with_capacity(patterns.len()),
        };
        ac.trans.push(Vec::new());
        ac.fail.push(ROOT);
        ac.out.push(Vec::new());
        for pattern in &patterns {
            let bytes = pattern.as_ref().as_bytes();
            assert!(!bytes.is_empty(), "empty literal pattern");
            let id = ac.patterns as u32;
            ac.patterns += 1;
            ac.pattern_len.push(bytes.len() as u32);
            let mut node = ROOT;
            for &b in bytes {
                node = match ac.child(node, b) {
                    Some(next) => next,
                    None => {
                        let next = ac.trans.len() as u32;
                        ac.trans.push(Vec::new());
                        ac.fail.push(ROOT);
                        ac.out.push(Vec::new());
                        let row = &mut ac.trans[node as usize];
                        let pos = row.partition_point(|&(k, _)| k < b);
                        row.insert(pos, (b, next));
                        next
                    }
                };
            }
            ac.out[node as usize].push(id);
        }
        ac.build_links();
        ac
    }

    fn child(&self, node: u32, b: u8) -> Option<u32> {
        let row = &self.trans[node as usize];
        row.binary_search_by_key(&b, |&(k, _)| k).ok().map(|i| row[i].1)
    }

    /// BFS over the trie: compute failure links, merge output sets down the
    /// failure chain, and densify the root row.
    fn build_links(&mut self) {
        // One queue allocation sized for the whole trie — BFS visits every
        // state exactly once, so this never grows.
        let mut queue = std::collections::VecDeque::with_capacity(self.trans.len());
        for &(b, child) in &self.trans[ROOT as usize] {
            self.root_dense[b as usize] = child;
            queue.push_back(child);
        }
        while let Some(node) = queue.pop_front() {
            for i in 0..self.trans[node as usize].len() {
                let (b, child) = self.trans[node as usize][i];
                // Follow the parent's failure chain to the deepest proper
                // suffix state that can consume `b`.
                let mut f = self.fail[node as usize];
                let fallback = loop {
                    if let Some(next) = self.child(f, b) {
                        break next;
                    }
                    if f == ROOT {
                        break self.root_dense[b as usize];
                    }
                    f = self.fail[f as usize];
                };
                // `fallback` can equal `child` only when node is the root's
                // own child chain; guard against self-links.
                self.fail[child as usize] = if fallback == child { ROOT } else { fallback };
                extend_out(&mut self.out, child as usize, self.fail[child as usize] as usize);
                queue.push_back(child);
            }
        }
    }

    /// Number of patterns compiled in.
    pub fn pattern_count(&self) -> usize {
        self.patterns
    }

    /// Number of trie states (diagnostics / memory accounting).
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// Scans `haystack` once, invoking `on_match(pattern_id)` for every
    /// occurrence of every pattern (overlaps included). A pattern occurring
    /// `k` times is reported `k` times; callers that only need set
    /// membership dedupe on their side (the rule executor uses an
    /// epoch-stamped mark table).
    pub fn scan<F: FnMut(u32)>(&self, haystack: &str, mut on_match: F) {
        let mut node = ROOT;
        for &b in haystack.as_bytes() {
            node = self.step(node, b);
            for &id in &self.out[node as usize] {
                on_match(id);
            }
        }
    }

    /// Advances one byte from `node`.
    #[inline]
    fn step(&self, mut node: u32, b: u8) -> u32 {
        loop {
            if node == ROOT {
                return self.root_dense[b as usize];
            }
            if let Some(next) = self.child(node, b) {
                return next;
            }
            node = self.fail[node as usize];
        }
    }

    /// All matches as `(pattern_id, start, end)` byte spans, in scan order
    /// (by end position). Convenience for tests and diagnostics; the hot
    /// path uses [`AhoCorasick::scan`].
    pub fn find_all(&self, haystack: &str) -> Vec<(u32, usize, usize)> {
        let mut hits = Vec::new();
        let mut node = ROOT;
        for (i, &b) in haystack.as_bytes().iter().enumerate() {
            node = self.step(node, b);
            for &id in &self.out[node as usize] {
                let len = self.pattern_len[id as usize] as usize;
                hits.push((id, i + 1 - len, i + 1));
            }
        }
        hits
    }
}

/// Appends `out[src]` onto `out[dst]` without cloning the source set —
/// the failure-chain merge runs once per state and used to pay a fresh
/// `Vec` per inherited set.
fn extend_out(out: &mut [Vec<u32>], dst: usize, src: usize) {
    if dst == src || out[src].is_empty() {
        return;
    }
    if dst < src {
        let (lo, hi) = out.split_at_mut(src);
        lo[dst].extend_from_slice(&hi[0]);
    } else {
        let (lo, hi) = out.split_at_mut(dst);
        hi[0].extend_from_slice(&lo[src]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn hit_set(ac: &AhoCorasick, text: &str) -> HashSet<u32> {
        let mut seen = HashSet::new();
        ac.scan(text, |id| {
            seen.insert(id);
        });
        seen
    }

    #[test]
    fn classic_example() {
        // The textbook {he, she, his, hers} automaton.
        let ac = AhoCorasick::new(["he", "she", "his", "hers"]);
        let hits = ac.find_all("ushers");
        assert_eq!(hits, vec![(1, 1, 4), (0, 2, 4), (3, 2, 6)]);
    }

    #[test]
    fn overlapping_and_repeated_patterns() {
        let ac = AhoCorasick::new(["aa"]);
        let hits = ac.find_all("aaaa");
        assert_eq!(hits.len(), 3, "overlapping occurrences all reported");
    }

    #[test]
    fn duplicate_patterns_each_report() {
        let ac = AhoCorasick::new(["ring", "ring"]);
        assert_eq!(hit_set(&ac, "earring"), HashSet::from([0, 1]));
    }

    #[test]
    fn suffix_pattern_found_inside_longer_pattern() {
        // "ring" ends inside every "earring" occurrence — output merging
        // along failure links must surface it.
        let ac = AhoCorasick::new(["earring", "ring"]);
        assert_eq!(hit_set(&ac, "gold earrings"), HashSet::from([0, 1]));
        assert_eq!(hit_set(&ac, "o-ring kit"), HashSet::from([1]));
    }

    #[test]
    fn non_ascii_patterns() {
        let ac = AhoCorasick::new(["café", "straße", "änder"]);
        assert_eq!(hit_set(&ac, "le café crème"), HashSet::from([0]));
        assert_eq!(hit_set(&ac, "hauptstraße 7"), HashSet::from([1]));
        assert_eq!(hit_set(&ac, "plain text"), HashSet::new());
    }

    #[test]
    fn single_byte_patterns() {
        let ac = AhoCorasick::new(["a", "b"]);
        let hits = ac.find_all("abc");
        assert_eq!(hits, vec![(0, 0, 1), (1, 1, 2)]);
    }

    #[test]
    fn no_match_on_empty_haystack() {
        let ac = AhoCorasick::new(["x"]);
        assert!(ac.find_all("").is_empty());
    }

    #[test]
    #[should_panic(expected = "empty literal pattern")]
    fn empty_pattern_rejected() {
        let _ = AhoCorasick::new([""]);
    }

    #[test]
    fn agrees_with_contains_on_random_inputs() {
        // Deterministic pseudo-random cross-check against `str::contains`.
        let alphabet = ["ring", "rug", "lap", "top", "oil", "o", "ri", "ngr"];
        let ac = AhoCorasick::new(alphabet);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..200 {
            let len = next() % 24;
            let text: String = (0..len).map(|_| b"rignutopl o"[next() % 11] as char).collect();
            let expected: HashSet<u32> = alphabet
                .iter()
                .enumerate()
                .filter(|(_, p)| text.contains(*p))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(hit_set(&ac, &text), expected, "text {text:?}");
        }
    }

    #[test]
    fn state_and_pattern_counts() {
        let ac = AhoCorasick::new(["he", "she"]);
        assert_eq!(ac.pattern_count(), 2);
        // root + h,e + s,sh,she = 6 states.
        assert_eq!(ac.state_count(), 6);
    }
}
