//! Abstract syntax tree for the rulekit pattern language.
//!
//! The language covers the constructs observed in the paper's analyst-written
//! rules: literals, `.`, character classes (`[ -]`, `[a-z]`, `[^…]`), the
//! perl-style classes `\w \s \d` and their negations, grouping (capturing and
//! `(?:…)`), alternation, the quantifiers `? * + {m} {m,} {m,n}` (greedy and
//! lazy), and the anchors `^ $`.

use std::fmt;

/// A parsed pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// A single literal character.
    Literal(char),
    /// `.` — any character except `\n`.
    AnyChar,
    /// A character class, e.g. `[a-z0-9]` or `[^abc]`.
    Class(ClassSet),
    /// `^` — start-of-text anchor.
    StartAnchor,
    /// `$` — end-of-text anchor.
    EndAnchor,
    /// A group. Capturing groups carry their 1-based capture index.
    Group {
        /// `Some(i)` for the `i`-th capturing group, `None` for `(?:…)`.
        index: Option<u32>,
        /// The sub-pattern inside the group.
        inner: Box<Ast>,
    },
    /// Concatenation of sub-patterns.
    Concat(Vec<Ast>),
    /// Alternation (`a|b|c`).
    Alternate(Vec<Ast>),
    /// A quantified sub-pattern.
    Repeat {
        /// The repeated sub-pattern.
        inner: Box<Ast>,
        /// Minimum number of repetitions.
        min: u32,
        /// Maximum number of repetitions (`None` = unbounded).
        max: Option<u32>,
        /// Greedy (`true`) or lazy (`false`, written with a trailing `?`).
        greedy: bool,
    },
}

/// A set of character ranges, possibly negated.
///
/// Ranges are kept sorted and non-overlapping by [`ClassSet::canonicalize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSet {
    /// Inclusive character ranges in the set.
    pub ranges: Vec<(char, char)>,
    /// Whether the set is negated (`[^…]`).
    pub negated: bool,
}

impl ClassSet {
    /// Creates an empty, non-negated class.
    pub fn new() -> Self {
        ClassSet { ranges: Vec::new(), negated: false }
    }

    /// Adds a single character to the set.
    pub fn push_char(&mut self, c: char) {
        self.ranges.push((c, c));
    }

    /// Adds an inclusive range to the set.
    pub fn push_range(&mut self, lo: char, hi: char) {
        debug_assert!(lo <= hi);
        self.ranges.push((lo, hi));
    }

    /// The `\w` class: `[A-Za-z0-9_]`.
    pub fn word() -> Self {
        ClassSet { ranges: vec![('0', '9'), ('A', 'Z'), ('_', '_'), ('a', 'z')], negated: false }
    }

    /// The `\d` class: `[0-9]`.
    pub fn digit() -> Self {
        ClassSet { ranges: vec![('0', '9')], negated: false }
    }

    /// The `\s` class: ASCII whitespace.
    pub fn space() -> Self {
        ClassSet { ranges: vec![('\t', '\r'), (' ', ' ')], negated: false }
    }

    /// Sorts and merges ranges; resolves negation into concrete ranges.
    ///
    /// After canonicalization `negated` is always `false` and `ranges` are
    /// sorted, non-empty (unless the class matches nothing), non-adjacent and
    /// non-overlapping.
    pub fn canonicalize(&mut self) {
        self.ranges.sort_unstable();
        let mut merged: Vec<(char, char)> = Vec::with_capacity(self.ranges.len());
        for &(lo, hi) in &self.ranges {
            match merged.last_mut() {
                Some(last) if next_char(last.1).is_some_and(|n| lo <= n) => {
                    if hi > last.1 {
                        last.1 = hi;
                    }
                }
                _ => merged.push((lo, hi)),
            }
        }
        if self.negated {
            self.ranges = complement(&merged);
            self.negated = false;
        } else {
            self.ranges = merged;
        }
    }

    /// Whether the (canonical) set contains `c`.
    pub fn contains(&self, c: char) -> bool {
        debug_assert!(!self.negated, "contains() requires a canonical class");
        self.ranges
            .binary_search_by(|&(lo, hi)| {
                if c < lo {
                    std::cmp::Ordering::Greater
                } else if c > hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Extends the set with the case-folded counterparts of ASCII letters.
    pub fn case_fold(&mut self) {
        let mut extra = Vec::new();
        for &(lo, hi) in &self.ranges {
            // Lowercase letters overlapping [a-z] gain the uppercase twin.
            let l = lo.max('a');
            let h = hi.min('z');
            if l <= h {
                extra.push((to_upper(l), to_upper(h)));
            }
            // Uppercase letters overlapping [A-Z] gain the lowercase twin.
            let l = lo.max('A');
            let h = hi.min('Z');
            if l <= h {
                extra.push((to_lower(l), to_lower(h)));
            }
        }
        self.ranges.extend(extra);
    }
}

impl Default for ClassSet {
    fn default() -> Self {
        Self::new()
    }
}

fn to_upper(c: char) -> char {
    c.to_ascii_uppercase()
}

fn to_lower(c: char) -> char {
    c.to_ascii_lowercase()
}

fn next_char(c: char) -> Option<char> {
    let mut u = c as u32 + 1;
    if u == 0xD800 {
        u = 0xE000; // skip the surrogate gap
    }
    char::from_u32(u)
}

fn prev_char(c: char) -> Option<char> {
    if c == '\0' {
        return None;
    }
    let mut u = c as u32 - 1;
    if u == 0xDFFF {
        u = 0xD7FF;
    }
    char::from_u32(u)
}

/// Complements a sorted, merged range list over the full `char` space.
fn complement(ranges: &[(char, char)]) -> Vec<(char, char)> {
    let mut out = Vec::with_capacity(ranges.len() + 1);
    let mut next_lo = '\0';
    let mut exhausted = false;
    for &(lo, hi) in ranges {
        if let Some(p) = prev_char(lo) {
            if next_lo <= p {
                out.push((next_lo, p));
            }
        }
        match next_char(hi) {
            Some(n) => next_lo = n,
            None => {
                exhausted = true;
                break;
            }
        }
    }
    if !exhausted {
        out.push((next_lo, char::MAX));
    }
    out
}

impl Ast {
    /// Builds a concatenation, flattening trivial cases.
    pub fn concat(mut parts: Vec<Ast>) -> Ast {
        parts.retain(|p| !matches!(p, Ast::Empty));
        match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("len checked"),
            _ => Ast::Concat(parts),
        }
    }

    /// Builds an alternation, flattening the single-arm case.
    pub fn alternate(mut arms: Vec<Ast>) -> Ast {
        match arms.len() {
            0 => Ast::Empty,
            1 => arms.pop().expect("len checked"),
            _ => Ast::Alternate(arms),
        }
    }

    /// Number of capturing groups contained in this AST.
    pub fn capture_count(&self) -> u32 {
        match self {
            Ast::Group { index, inner } => u32::from(index.is_some()) + inner.capture_count(),
            Ast::Concat(parts) | Ast::Alternate(parts) => {
                parts.iter().map(Ast::capture_count).sum()
            }
            Ast::Repeat { inner, .. } => inner.capture_count(),
            _ => 0,
        }
    }
}

impl fmt::Display for Ast {
    /// Renders the AST back to pattern syntax (used for diagnostics).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ast::Empty => Ok(()),
            Ast::Literal(c) => {
                if is_meta(*c) {
                    write!(f, "\\{c}")
                } else {
                    write!(f, "{c}")
                }
            }
            Ast::AnyChar => write!(f, "."),
            Ast::Class(set) => {
                write!(f, "[")?;
                if set.negated {
                    write!(f, "^")?;
                }
                for &(lo, hi) in &set.ranges {
                    if lo == hi {
                        write!(f, "{}", escape_in_class(lo))?;
                    } else {
                        write!(f, "{}-{}", escape_in_class(lo), escape_in_class(hi))?;
                    }
                }
                write!(f, "]")
            }
            Ast::StartAnchor => write!(f, "^"),
            Ast::EndAnchor => write!(f, "$"),
            Ast::Group { index, inner } => {
                if index.is_some() {
                    write!(f, "({inner})")
                } else {
                    write!(f, "(?:{inner})")
                }
            }
            Ast::Concat(parts) => {
                for p in parts {
                    if matches!(p, Ast::Alternate(_)) {
                        write!(f, "(?:{p})")?;
                    } else {
                        write!(f, "{p}")?;
                    }
                }
                Ok(())
            }
            Ast::Alternate(arms) => {
                for (i, a) in arms.iter().enumerate() {
                    if i > 0 {
                        write!(f, "|")?;
                    }
                    write!(f, "{a}")?;
                }
                Ok(())
            }
            Ast::Repeat { inner, min, max, greedy } => {
                let needs_group = !matches!(
                    **inner,
                    Ast::Literal(_) | Ast::AnyChar | Ast::Class(_) | Ast::Group { .. }
                );
                if needs_group {
                    write!(f, "(?:{inner})")?;
                } else {
                    write!(f, "{inner}")?;
                }
                match (min, max) {
                    (0, Some(1)) => write!(f, "?")?,
                    (0, None) => write!(f, "*")?,
                    (1, None) => write!(f, "+")?,
                    (m, Some(n)) if m == n => write!(f, "{{{m}}}")?,
                    (m, Some(n)) => write!(f, "{{{m},{n}}}")?,
                    (m, None) => write!(f, "{{{m},}}")?,
                }
                if !greedy {
                    write!(f, "?")?;
                }
                Ok(())
            }
        }
    }
}

/// Whether `c` is a pattern metacharacter that must be escaped in a literal.
pub fn is_meta(c: char) -> bool {
    matches!(c, '\\' | '.' | '+' | '*' | '?' | '(' | ')' | '|' | '[' | ']' | '{' | '}' | '^' | '$')
}

fn escape_in_class(c: char) -> String {
    match c {
        '\\' | ']' | '^' | '-' => format!("\\{c}"),
        _ => c.to_string(),
    }
}

/// Escapes `text` so it matches itself literally inside a pattern.
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        if is_meta(c) {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_canonicalize_merges_overlaps() {
        let mut set = ClassSet::new();
        set.push_range('a', 'f');
        set.push_range('d', 'k');
        set.push_char('m');
        set.canonicalize();
        assert_eq!(set.ranges, vec![('a', 'k'), ('m', 'm')]);
    }

    #[test]
    fn class_canonicalize_merges_adjacent() {
        let mut set = ClassSet::new();
        set.push_range('a', 'c');
        set.push_range('d', 'f');
        set.canonicalize();
        assert_eq!(set.ranges, vec![('a', 'f')]);
    }

    #[test]
    fn class_negation_resolves() {
        let mut set = ClassSet::new();
        set.push_char('b');
        set.negated = true;
        set.canonicalize();
        assert!(!set.negated);
        assert!(set.contains('a'));
        assert!(!set.contains('b'));
        assert!(set.contains('c'));
        assert!(set.contains('\0'));
        assert!(set.contains(char::MAX));
    }

    #[test]
    fn class_negate_full_space_is_empty() {
        let mut set = ClassSet::new();
        set.push_range('\0', char::MAX);
        set.negated = true;
        set.canonicalize();
        assert!(set.ranges.is_empty());
    }

    #[test]
    fn class_contains_binary_search() {
        let mut set = ClassSet::word();
        set.canonicalize();
        assert!(set.contains('a'));
        assert!(set.contains('Z'));
        assert!(set.contains('_'));
        assert!(set.contains('5'));
        assert!(!set.contains(' '));
        assert!(!set.contains('-'));
    }

    #[test]
    fn case_fold_adds_twins() {
        let mut set = ClassSet::new();
        set.push_range('a', 'c');
        set.case_fold();
        set.canonicalize();
        assert!(set.contains('A'));
        assert!(set.contains('b'));
        assert!(set.contains('C'));
        assert!(!set.contains('d'));
    }

    #[test]
    fn capture_count_nested() {
        let ast = Ast::Concat(vec![
            Ast::Group {
                index: Some(1),
                inner: Box::new(Ast::Group { index: Some(2), inner: Box::new(Ast::Literal('a')) }),
            },
            Ast::Group { index: None, inner: Box::new(Ast::Literal('b')) },
        ]);
        assert_eq!(ast.capture_count(), 2);
    }

    #[test]
    fn escape_round_trips_meta() {
        assert_eq!(escape("a.b*c"), "a\\.b\\*c");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn display_renders_quantifiers() {
        let ast =
            Ast::Repeat { inner: Box::new(Ast::Literal('s')), min: 0, max: Some(1), greedy: true };
        assert_eq!(ast.to_string(), "s?");
    }
}
