//! Language containment between patterns, for subsumption detection
//! (§4 "Rule Maintenance": `jeans?` subsumes `denim.*jeans?`).
//!
//! Rule semantics are *touch* semantics: a rule touches a title iff the
//! pattern matches somewhere in the title. Pattern `a` is touch-subsumed by
//! pattern `b` iff `Σ* L(a) Σ* ⊆ Σ* L(b) Σ*`. We decide this by an on-the-fly
//! product subset construction over the two NFAs, with a state budget;
//! patterns whose product exceeds the budget (or that use anchors) report
//! [`Containment::Unknown`].

use crate::ast::Ast;
use crate::nfa::{compile, CompileOptions, Inst, Program};
use crate::Error;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Result of a containment query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Containment {
    /// Every text touched by `a` is touched by `b`.
    Subset,
    /// A counterexample exists (some text touched by `a` but not `b`).
    NotSubset,
    /// The analysis gave up (anchors present or state budget exceeded).
    Unknown,
}

/// Maximum number of product states explored before giving up.
const STATE_BUDGET: usize = 50_000;

/// Decides whether every text touched by `a` is also touched by `b`.
pub fn touch_subset(a: &Ast, b: &Ast, case_insensitive: bool) -> Containment {
    if has_anchor(a) || has_anchor(b) {
        return Containment::Unknown;
    }
    let opts = CompileOptions { case_insensitive };
    let (Ok(pa), Ok(pb)) = (compile_touch(a, opts), compile_touch(b, opts)) else {
        return Containment::Unknown;
    };
    match check_subset(&pa, &pb) {
        Some(true) => Containment::Subset,
        Some(false) => Containment::NotSubset,
        None => Containment::Unknown,
    }
}

fn has_anchor(ast: &Ast) -> bool {
    match ast {
        Ast::StartAnchor | Ast::EndAnchor => true,
        Ast::Group { inner, .. } => has_anchor(inner),
        Ast::Repeat { inner, .. } => has_anchor(inner),
        Ast::Concat(parts) | Ast::Alternate(parts) => parts.iter().any(has_anchor),
        _ => false,
    }
}

/// Compiles `Σ* ast Σ*` (touch language). `Σ` here is "any char": rule inputs
/// are single-line titles, so the `.`-excludes-newline subtlety is irrelevant
/// and we use a full wildcard.
fn compile_touch(ast: &Ast, opts: CompileOptions) -> Result<Program, Error> {
    let any = Ast::Repeat {
        inner: Box::new(Ast::Class(crate::ast::ClassSet {
            ranges: vec![('\0', char::MAX)],
            negated: false,
        })),
        min: 0,
        max: None,
        greedy: true,
    };
    let wrapped = Ast::Concat(vec![any.clone(), ast.clone(), any]);
    compile(&wrapped, opts)
}

/// A determinized NFA state: sorted set of pcs at consuming/match instructions.
type Subset = Vec<u32>;

/// Epsilon-closure of `pcs` (Save/Jump/Split are free; anchors were rejected).
fn closure(program: &Program, pcs: impl IntoIterator<Item = u32>) -> Subset {
    let mut seen = vec![false; program.insts.len()];
    let mut stack: Vec<u32> = pcs.into_iter().collect();
    let mut out = Vec::new();
    while let Some(pc) = stack.pop() {
        if std::mem::replace(&mut seen[pc as usize], true) {
            continue;
        }
        match &program.insts[pc as usize] {
            Inst::Jump(t) => stack.push(*t),
            Inst::Split(x, y) => {
                stack.push(*x);
                stack.push(*y);
            }
            Inst::Save(_) => stack.push(pc + 1),
            // Anchors rejected up front; treat defensively as dead ends.
            Inst::AssertStart | Inst::AssertEnd => {}
            Inst::Ranges(..) | Inst::Any | Inst::Match => out.push(pc),
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn accepts(program: &Program, subset: &Subset) -> bool {
    subset.iter().any(|&pc| matches!(program.insts[pc as usize], Inst::Match))
}

/// Steps `subset` on character `c`.
fn step(program: &Program, subset: &Subset, c: char) -> Subset {
    let mut next = Vec::new();
    for &pc in subset {
        match &program.insts[pc as usize] {
            Inst::Ranges(ranges) if ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi) => {
                next.push(pc + 1);
            }
            Inst::Any if c != '\n' => {
                next.push(pc + 1);
            }
            _ => {}
        }
    }
    closure(program, next)
}

/// Representative characters: one per equivalence class of the combined
/// transition alphabets of the states in both subsets.
fn representatives(pa: &Program, sa: &Subset, pb: &Program, sb: &Subset) -> Vec<char> {
    let mut bounds: BTreeSet<u32> = BTreeSet::new();
    bounds.insert(0);
    bounds.insert('\n' as u32);
    bounds.insert('\n' as u32 + 1);
    let mut add = |program: &Program, subset: &Subset| {
        for &pc in subset {
            if let Inst::Ranges(ranges) = &program.insts[pc as usize] {
                for &(lo, hi) in ranges.iter() {
                    bounds.insert(lo as u32);
                    bounds.insert(hi as u32 + 1);
                }
            }
        }
    };
    add(pa, sa);
    add(pb, sb);
    bounds.into_iter().filter_map(char::from_u32).collect()
}

/// BFS over the product automaton looking for a state accepting in A but not
/// in B. `None` = budget exceeded.
fn check_subset(pa: &Program, pb: &Program) -> Option<bool> {
    let start = (closure(pa, [0u32]), closure(pb, [0u32]));
    let mut visited: HashMap<(Subset, Subset), ()> = HashMap::new();
    let mut queue = VecDeque::new();
    visited.insert(start.clone(), ());
    queue.push_back(start);

    while let Some((sa, sb)) = queue.pop_front() {
        if accepts(pa, &sa) && !accepts(pb, &sb) {
            return Some(false);
        }
        if visited.len() > STATE_BUDGET {
            return None;
        }
        for c in representatives(pa, &sa, pb, &sb) {
            let na = step(pa, &sa, c);
            if na.is_empty() {
                // No A-match can be completed along this path.
                continue;
            }
            let nb = step(pb, &sb, c);
            let key = (na, nb);
            if !visited.contains_key(&key) {
                visited.insert(key.clone(), ());
                queue.push_back(key);
            }
        }
    }
    Some(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn subset(a: &str, b: &str) -> Containment {
        touch_subset(&parse(a).unwrap(), &parse(b).unwrap(), true)
    }

    #[test]
    fn paper_example_jeans() {
        // §4: "denim.*jeans?" is subsumed by "jeans?".
        assert_eq!(subset("denim.*jeans?", "jeans?"), Containment::Subset);
        assert_eq!(subset("jeans?", "denim.*jeans?"), Containment::NotSubset);
    }

    #[test]
    fn identical_patterns_subsume_both_ways() {
        assert_eq!(subset("rings?", "rings?"), Containment::Subset);
    }

    #[test]
    fn singular_subsumed_by_optional_plural() {
        assert_eq!(subset("ring", "rings?"), Containment::Subset);
        // "rings?" touches anything containing "ring", so the reverse holds too.
        assert_eq!(subset("rings?", "ring"), Containment::Subset);
    }

    #[test]
    fn disjoint_literals_not_subsets() {
        assert_eq!(subset("rug", "ring"), Containment::NotSubset);
    }

    #[test]
    fn alternation_arm_subsumed_by_whole() {
        assert_eq!(subset("motor oil", "(motor|engine) oils?"), Containment::Subset);
        assert_eq!(subset("(motor|engine) oils?", "motor oil"), Containment::NotSubset);
    }

    #[test]
    fn paper_example_abrasive_overlap() {
        // §4: the two "wheels & discs" rules overlap but neither subsumes:
        // "(abrasive|sand(er|ing))[ -](wheels?|discs?)" vs
        // "abrasive.*(wheels?|discs?)".
        let a = "(abrasive|sand(er|ing))[ -](wheels?|discs?)";
        let b = "abrasive.*(wheels?|discs?)";
        // A title "sander wheels" is touched by a but not b.
        assert_eq!(subset(a, b), Containment::NotSubset);
        // A title "abrasive cutting wheel" is touched by b but not a.
        assert_eq!(subset(b, a), Containment::NotSubset);
        // But "abrasive wheel" restriction of a IS inside b.
        assert_eq!(subset("abrasive[ -](wheels?|discs?)", b), Containment::Subset);
    }

    #[test]
    fn anchored_patterns_report_unknown() {
        assert_eq!(subset("^ring", "ring"), Containment::Unknown);
    }

    #[test]
    fn class_containment() {
        assert_eq!(subset("[0-5]", r"\d"), Containment::Subset);
        assert_eq!(subset(r"\d", "[0-5]"), Containment::NotSubset);
    }

    #[test]
    fn case_insensitive_containment() {
        assert_eq!(
            touch_subset(&parse("RING").unwrap(), &parse("ring").unwrap(), true),
            Containment::Subset
        );
        assert_eq!(
            touch_subset(&parse("RING").unwrap(), &parse("ring").unwrap(), false),
            Containment::NotSubset
        );
    }

    #[test]
    fn empty_pattern_touches_everything() {
        // Everything is subsumed by the empty pattern (it touches all texts).
        assert_eq!(subset("ring", ""), Containment::Subset);
        assert_eq!(subset("", "ring"), Containment::NotSubset);
    }
}
