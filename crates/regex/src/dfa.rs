//! Lazy DFA: cached on-the-fly subset construction over the Thompson NFA.
//!
//! The Pike VM answers `is_match` in `O(text × program)` with two thread
//! lists and an `Rc` slot box allocated per call — fine for ad-hoc matching,
//! ruinous when the literal-scan executor confirms ~100 candidate rules per
//! title at 100k-rule scale. The lazy DFA converts the same NFA program into
//! a deterministic automaton *one state at a time, as the input demands*:
//!
//! * a **state** is the sorted epsilon-closure of NFA pcs (consuming
//!   instructions, `Match`, and *pending* end-of-text assertions);
//! * the **alphabet** is compressed into character equivalence classes
//!   derived from every `Ranges` boundary in the program (plus `\n` for
//!   `Any`), so a state's transition row is a handful of entries, not 1112k
//!   code points;
//! * transitions are discovered on first use and memoized in a flat
//!   `state × class` table — steady-state matching is one table load per
//!   character and allocates nothing;
//! * the state cache is **bounded**: when a pathological pattern mints more
//!   than [`DEFAULT_STATE_BUDGET`] distinct states, the cache is cleared and
//!   rebuilt in place; after [`MAX_CLEARS_PER_SEARCH`] clears within a
//!   single search the engine gives up (`None`) and the caller falls back to
//!   the Pike VM, preserving the linear worst case. A regex whose searches
//!   keep falling back is marked hostile and stops trying the DFA at all.
//!
//! Capture extraction always runs on the Pike VM — the DFA answers only the
//! boolean confirmation query, which is all rule execution needs.
//!
//! Thread safety: the immutable construction (`LazyDfa`) is shared via
//! `Arc` by cloned regexes; mutable scratch (`Cache`) lives in a pooled
//! free-list guarded by a `Mutex` held only to pop/push, never during a
//! search, so concurrent batch workers each warm their own cache without
//! contending.

use crate::nfa::{Inst, Program};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Maximum distinct states cached per search cache before eviction.
pub const DEFAULT_STATE_BUDGET: usize = 256;
/// Cache clears tolerated within one search before falling back to PikeVM.
const MAX_CLEARS_PER_SEARCH: u32 = 3;
/// Searches that fell back before the regex stops trying the DFA entirely.
const HOSTILE_FALLBACK_LIMIT: u64 = 8;
/// Programs larger than this skip the DFA (counted-repetition bombs would
/// churn the state cache for nothing).
const MAX_DFA_PROGRAM: usize = 2048;
/// Alphabet-compression cap: more equivalence classes than this and the
/// transition rows stop paying for themselves.
const MAX_CLASSES: usize = 128;
/// Caches kept in the per-regex free list.
const MAX_POOL: usize = 8;

/// Transition-table sentinel: not yet computed. Checked before
/// [`MATCH_BIT`], so the overlap of the two encodings is harmless.
const UNKNOWN: u32 = u32::MAX;
/// The dead state (empty closure) is always state 0.
const DEAD: u32 = 0;
/// Set on a memoized transition whose target state is a match state, so the
/// hot loop learns "matched" from the transition word itself instead of a
/// second dependent load. State ids stay far below 2³¹ (the budget caps
/// them), so the bit is free.
const MATCH_BIT: u32 = 1 << 31;

/// End-of-input resolution per state: not yet computed / match / no match.
const EOI_UNKNOWN: u8 = 0;
const EOI_MATCH: u8 = 1;
const EOI_NO_MATCH: u8 = 2;

/// Shared, immutable part of a lazy DFA for one compiled program.
pub struct LazyDfa {
    program: Arc<Program>,
    /// Sorted equivalence-class boundaries; class of `c` = number of
    /// boundaries ≤ `c`.
    boundaries: Vec<char>,
    /// Dense `char → class` table for ASCII, the common case for titles.
    ascii: [u16; 128],
    /// Lowest character of each class — because classes refine every range
    /// in the program, testing the representative is exact.
    repr: Vec<char>,
    class_count: usize,
    /// Every match must start at position 0 (`^` on all paths): no reseeding,
    /// and the dead state is terminal.
    anchored: bool,
    budget: usize,
    /// Single-slot fast path for the pool: one atomic swap per checkout /
    /// checkin in the common one-thread-per-regex case. Rule execution
    /// calls `is_match` once per admitted candidate, so two mutex ops per
    /// call were a measurable fraction of short-title searches.
    stash: AtomicPtr<Cache>,
    /// Boxed so caches move between `stash` (raw pointer) and the overflow
    /// list without reallocating — the Box *is* the stashed allocation.
    #[allow(clippy::vec_box)]
    pool: Mutex<Vec<Box<Cache>>>,
    /// Set after [`HOSTILE_FALLBACK_LIMIT`] searches fell back: this pattern
    /// thrashes the cache, stop burning work before each PikeVM run.
    hostile: AtomicBool,
    fallbacks: AtomicU64,
}

/// Mutable search state: discovered states, memoized transitions, scratch.
#[derive(Default)]
struct Cache {
    /// State id → sorted closure key. Keys contain consuming pcs, `Match`
    /// pcs, and pending `AssertEnd` pcs (resolved only at end of input) —
    /// all three influence behaviour, so all three are part of identity.
    keys: Vec<Box<[u32]>>,
    /// State id → "contains a `Match` pc" (match ends at current position).
    is_match: Vec<bool>,
    map: HashMap<Box<[u32]>, u32>,
    /// Flat `state × class_count` transition table; `UNKNOWN` = unmemoized.
    trans: Vec<u32>,
    /// Per-state end-of-input verdict (pending `$` resolved at text end).
    eoi: Vec<u8>,
    /// Start state id (computed with the at-start assertion satisfied).
    start: u32,
    clears: u32,
    // Closure scratch, reused across searches.
    stack: Vec<u32>,
    seen: Vec<u32>,
    epoch: u32,
    key_buf: Vec<u32>,
    moved: Vec<u32>,
}

impl LazyDfa {
    /// Builds the shared half of a lazy DFA, or `None` when the program is
    /// too large or its alphabet too fragmented to benefit.
    pub fn new(program: Arc<Program>) -> Option<LazyDfa> {
        Self::with_budget(program, DEFAULT_STATE_BUDGET)
    }

    /// Like [`LazyDfa::new`] with an explicit state budget — exposed so the
    /// eviction tests can force a tiny cache.
    pub fn with_budget(program: Arc<Program>, budget: usize) -> Option<LazyDfa> {
        if program.insts.len() > MAX_DFA_PROGRAM {
            return None;
        }
        let mut boundaries: Vec<char> = Vec::new();
        let mut any = false;
        for inst in &program.insts {
            match inst {
                Inst::Ranges(ranges) => {
                    for &(lo, hi) in ranges.iter() {
                        boundaries.push(lo);
                        if let Some(s) = char_succ(hi) {
                            boundaries.push(s);
                        }
                    }
                }
                Inst::Any => any = true,
                _ => {}
            }
        }
        if any {
            boundaries.push('\n');
            boundaries.push('\u{b}'); // succ('\n')
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        let class_count = boundaries.len() + 1;
        if class_count > MAX_CLASSES {
            return None;
        }
        let mut ascii = [0u16; 128];
        for (i, slot) in ascii.iter_mut().enumerate() {
            let c = i as u8 as char;
            *slot = boundaries.partition_point(|&b| b <= c) as u16;
        }
        let mut repr = Vec::with_capacity(class_count);
        repr.push('\0');
        repr.extend(boundaries.iter().copied());
        let anchored = program.anchored_start;
        Some(LazyDfa {
            program,
            boundaries,
            ascii,
            repr,
            class_count,
            anchored,
            budget: budget.max(8),
            stash: AtomicPtr::new(std::ptr::null_mut()),
            pool: Mutex::new(Vec::new()),
            hostile: AtomicBool::new(false),
            fallbacks: AtomicU64::new(0),
        })
    }

    /// Whether the pattern matches anywhere in `text`.
    ///
    /// `None` means the DFA gave up (cache thrash) and the caller must run
    /// the Pike VM; the answer is never wrong, only occasionally absent.
    pub fn is_match(&self, text: &str) -> Option<bool> {
        if self.hostile.load(Ordering::Relaxed) {
            return None;
        }
        let mut cache = self.checkout();
        let verdict = self.search(&mut cache, text);
        if verdict.is_none() {
            // Leave a clean cache for the next search; a few more misses and
            // the regex stops trying altogether.
            cache = Box::default();
            if self.fallbacks.fetch_add(1, Ordering::Relaxed) + 1 >= HOSTILE_FALLBACK_LIMIT {
                self.hostile.store(true, Ordering::Relaxed);
            }
        }
        self.checkin(cache);
        verdict
    }

    /// Searches fell back to the Pike VM so far (diagnostics).
    pub fn fallback_count(&self) -> u64 {
        self.fallbacks.load(Ordering::Relaxed)
    }

    fn checkout(&self) -> Box<Cache> {
        // Fast path: claim the stashed cache with one atomic swap. Only when
        // another thread holds it (or on the very first search) fall through
        // to the mutex-guarded overflow list.
        let p = self.stash.swap(std::ptr::null_mut(), Ordering::Acquire);
        if !p.is_null() {
            // SAFETY: a non-null stash pointer was produced by
            // `Box::into_raw` in `checkin`, and the swap transferred sole
            // ownership to this call.
            return unsafe { Box::from_raw(p) };
        }
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop().unwrap_or_default()
    }

    fn checkin(&self, cache: Box<Cache>) {
        let p = Box::into_raw(cache);
        if self
            .stash
            .compare_exchange(std::ptr::null_mut(), p, Ordering::Release, Ordering::Relaxed)
            .is_ok()
        {
            return;
        }
        // SAFETY: the exchange failed, so `p` was never published; this call
        // still owns it.
        let cache = unsafe { Box::from_raw(p) };
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < MAX_POOL {
            pool.push(cache);
        }
    }

    fn search(&self, cache: &mut Cache, text: &str) -> Option<bool> {
        if cache.keys.is_empty() {
            self.reset(cache);
        }
        cache.clears = 0;
        let mut sid = cache.start;
        if cache.is_match[sid as usize] {
            return Some(true);
        }
        let width = self.class_count;
        // Byte-wise walk with an ASCII fast path: titles are almost always
        // pure ASCII, and `chars()` decode overhead is measurable when the
        // per-transition work is two array loads. Multi-byte sequences
        // decode exactly one char and skip its full width.
        let bytes = text.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let b = bytes[i];
            let class = if b < 0x80 {
                i += 1;
                self.ascii[b as usize] as usize
            } else {
                let c = text[i..].chars().next().expect("non-empty UTF-8 tail");
                i += c.len_utf8();
                self.boundaries.partition_point(|&lo| lo <= c)
            };
            debug_assert!(sid as usize * width + class < cache.trans.len());
            // SAFETY: `insert_state` grows `trans` by exactly `width` per
            // state and `is_match` by one, so every state id (including any
            // re-seeded `sid` after a cache clear) indexes both in bounds;
            // `class` is always < `width` by construction of the class maps.
            let mut next = unsafe { *cache.trans.get_unchecked(sid as usize * width + class) };
            if next == UNKNOWN {
                next = self.compute_transition(cache, &mut sid, class)?;
            }
            if next & MATCH_BIT != 0 {
                return Some(true);
            }
            // Match transitions returned above, so `next` is a plain id here.
            if next == DEAD && self.anchored {
                return Some(false);
            }
            sid = next;
        }
        Some(self.eoi_match(cache, sid, text.is_empty()))
    }

    /// (Re)initializes a cache: dead state, then the start state (closure of
    /// pc 0 with the start-of-text assertion satisfied).
    fn reset(&self, cache: &mut Cache) {
        cache.keys.clear();
        cache.is_match.clear();
        cache.map.clear();
        cache.trans.clear();
        cache.eoi.clear();
        cache.seen.clear();
        cache.seen.resize(self.program.insts.len(), 0);
        cache.epoch = 0;
        let dead = self.insert_state(cache, Box::new([]));
        debug_assert_eq!(dead, DEAD);
        // The dead state has no outgoing NFA threads; for anchored programs
        // it is terminal, for unanchored ones its transitions re-seed from
        // pc 0 (computed lazily like any other row).
        self.closure(cache, &[0], true);
        let key: Box<[u32]> = cache.key_buf.as_slice().into();
        cache.start = self.insert_state(cache, key);
    }

    fn insert_state(&self, cache: &mut Cache, key: Box<[u32]>) -> u32 {
        if let Some(&id) = cache.map.get(&key) {
            return id;
        }
        let id = cache.keys.len() as u32;
        let is_match = key.iter().any(|&pc| matches!(self.program.insts[pc as usize], Inst::Match));
        cache.is_match.push(is_match);
        cache.map.insert(key.clone(), id);
        cache.keys.push(key);
        cache.trans.extend(std::iter::repeat_n(UNKNOWN, self.class_count));
        cache.eoi.push(EOI_UNKNOWN);
        id
    }

    /// Computes (and memoizes) the successor of `*sid` on `class`, returned
    /// as a transition word (state id, plus [`MATCH_BIT`] when the successor
    /// is a match state).
    ///
    /// On cache overflow the whole cache is cleared and `*sid` is re-seeded
    /// into the fresh cache (its key survives the clear), which is why the
    /// current state id is passed by reference. Returns `None` when the
    /// search has thrashed the cache too many times.
    fn compute_transition(&self, cache: &mut Cache, sid: &mut u32, class: usize) -> Option<u32> {
        loop {
            let repr = self.repr[class];
            // Move: advance every consuming pc that accepts this class.
            // Pending `$` pcs and `Match` pcs die on consumption.
            let Cache { keys, moved, .. } = cache;
            moved.clear();
            for &pc in keys[*sid as usize].iter() {
                match &self.program.insts[pc as usize] {
                    Inst::Ranges(ranges) if ranges_contain(ranges, repr) => moved.push(pc + 1),
                    Inst::Any if repr != '\n' => moved.push(pc + 1),
                    _ => {}
                }
            }
            if !self.anchored {
                // Unanchored search: a fresh attempt starts at every position.
                moved.push(0);
            }
            let moved = std::mem::take(&mut cache.moved);
            self.closure(cache, &moved, false);
            cache.moved = moved;
            if let Some(&id) = cache.map.get(cache.key_buf.as_slice()) {
                let word = id | if cache.is_match[id as usize] { MATCH_BIT } else { 0 };
                cache.trans[*sid as usize * self.class_count + class] = word;
                return Some(word);
            }
            if cache.keys.len() >= self.budget {
                cache.clears += 1;
                if cache.clears > MAX_CLEARS_PER_SEARCH {
                    return None;
                }
                let clears = cache.clears;
                let cur_key = std::mem::take(&mut cache.keys[*sid as usize]);
                self.reset(cache);
                cache.clears = clears;
                *sid = self.insert_state(cache, cur_key);
                // Recompute against the fresh cache (room is now guaranteed).
                continue;
            }
            let key: Box<[u32]> = cache.key_buf.as_slice().into();
            let id = self.insert_state(cache, key);
            let word = id | if cache.is_match[id as usize] { MATCH_BIT } else { 0 };
            cache.trans[*sid as usize * self.class_count + class] = word;
            return Some(word);
        }
    }

    /// Epsilon closure of `init` into `cache.key_buf` (sorted, deduped).
    ///
    /// Consuming pcs and `Match` pcs are collected; `AssertEnd` pcs are kept
    /// *pending* (they resolve only at end of input); `AssertStart` passes
    /// only when `at_start`.
    fn closure(&self, cache: &mut Cache, init: &[u32], at_start: bool) {
        let Cache { stack, seen, epoch, key_buf, .. } = cache;
        *epoch = epoch.wrapping_add(1);
        if *epoch == 0 {
            seen.fill(0);
            *epoch = 1;
        }
        key_buf.clear();
        stack.clear();
        stack.extend_from_slice(init);
        while let Some(pc) = stack.pop() {
            if seen[pc as usize] == *epoch {
                continue;
            }
            seen[pc as usize] = *epoch;
            match &self.program.insts[pc as usize] {
                Inst::Jump(to) => stack.push(*to),
                Inst::Split(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                Inst::Save(_) => stack.push(pc + 1),
                Inst::AssertStart => {
                    if at_start {
                        stack.push(pc + 1);
                    }
                }
                Inst::AssertEnd | Inst::Ranges(_) | Inst::Any | Inst::Match => key_buf.push(pc),
            }
        }
        key_buf.sort_unstable();
    }

    /// Resolves a state at end of input: a match already flagged, or a
    /// pending `$` whose continuation reaches `Match` with the end assertion
    /// satisfied. `at_start` is true only for empty input (the start state is
    /// the only state live at position 0), so the cached verdict covers the
    /// common case and empty input is computed fresh.
    fn eoi_match(&self, cache: &mut Cache, sid: u32, at_start: bool) -> bool {
        if cache.is_match[sid as usize] {
            return true;
        }
        if !at_start {
            match cache.eoi[sid as usize] {
                EOI_MATCH => return true,
                EOI_NO_MATCH => return false,
                _ => {}
            }
        }
        let verdict = self.eoi_resolves(cache, sid, at_start);
        if !at_start {
            cache.eoi[sid as usize] = if verdict { EOI_MATCH } else { EOI_NO_MATCH };
        }
        verdict
    }

    fn eoi_resolves(&self, cache: &mut Cache, sid: u32, at_start: bool) -> bool {
        let Cache { keys, stack, seen, epoch, .. } = cache;
        *epoch = epoch.wrapping_add(1);
        if *epoch == 0 {
            seen.fill(0);
            *epoch = 1;
        }
        stack.clear();
        for &pc in keys[sid as usize].iter() {
            if matches!(self.program.insts[pc as usize], Inst::AssertEnd) {
                stack.push(pc + 1);
            }
        }
        while let Some(pc) = stack.pop() {
            if seen[pc as usize] == *epoch {
                continue;
            }
            seen[pc as usize] = *epoch;
            match &self.program.insts[pc as usize] {
                Inst::Match => return true,
                Inst::Jump(to) => stack.push(*to),
                Inst::Split(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                Inst::Save(_) | Inst::AssertEnd => stack.push(pc + 1),
                Inst::AssertStart => {
                    if at_start {
                        stack.push(pc + 1);
                    }
                }
                // No input remains: consuming instructions are dead ends.
                Inst::Ranges(_) | Inst::Any => {}
            }
        }
        false
    }
}

impl Drop for LazyDfa {
    fn drop(&mut self) {
        let p = self.stash.swap(std::ptr::null_mut(), Ordering::Acquire);
        if !p.is_null() {
            // SAFETY: a non-null stash pointer came from `Box::into_raw` and
            // nothing else can claim it after the swap.
            drop(unsafe { Box::from_raw(p) });
        }
    }
}

/// The next code point after `c`, skipping the surrogate gap.
fn char_succ(c: char) -> Option<char> {
    let mut u = c as u32 + 1;
    if u == 0xD800 {
        u = 0xE000;
    }
    char::from_u32(u)
}

fn ranges_contain(ranges: &[(char, char)], c: char) -> bool {
    // Rule classes are tiny (1–4 ranges); linear scan beats binary search.
    if ranges.len() <= 4 {
        return ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
    }
    ranges
        .binary_search_by(|&(lo, hi)| {
            if c < lo {
                std::cmp::Ordering::Greater
            } else if c > hi {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        })
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::{compile, CompileOptions};
    use crate::parser::parse;
    use crate::pikevm;

    fn dfa_for(pattern: &str) -> (LazyDfa, Arc<Program>) {
        let program =
            Arc::new(compile(&parse(pattern).unwrap(), CompileOptions::default()).unwrap());
        (LazyDfa::new(program.clone()).expect("dfa built"), program)
    }

    fn check(pattern: &str, text: &str) {
        let (dfa, program) = dfa_for(pattern);
        let expected = pikevm::exec(&program, text, 0, true).is_some();
        assert_eq!(dfa.is_match(text), Some(expected), "pattern {pattern:?} on {text:?}");
    }

    #[test]
    fn agrees_with_pikevm_on_basics() {
        for (p, t) in [
            ("ring", "wedding ring set"),
            ("ring", "necklace"),
            ("rings?", "three rings"),
            ("a+b", "aab"),
            ("a+b", "b"),
            ("a|b|c", "zzz"),
            ("a|b|c", "zbz"),
            ("", ""),
            ("", "abc"),
            ("a.c", "a\nc"),
            ("a.c", "axc"),
            ("denim.*jeans?", "blue denim skinny jean"),
            ("denim.*jeans?", "skinny jean denim"),
        ] {
            check(p, t);
        }
    }

    #[test]
    fn anchors_resolve_at_the_right_positions() {
        for (p, t) in [
            ("^ring", "ring first"),
            ("^ring", "a ring"),
            ("ring$", "wedding ring"),
            ("ring$", "ring size"),
            ("^ring$", "ring"),
            ("^ring$", "ring "),
            ("^$", ""),
            ("^$", "x"),
            ("$", "abc"),
            ("a$|b", "cba"),
            ("a$|b", "cab"),
            ("^(a|b)c$", "bc"),
        ] {
            check(p, t);
        }
    }

    #[test]
    fn non_ascii_inputs_and_patterns() {
        for (p, t) in [
            ("café", "un café noir"),
            ("café", "un cafe noir"),
            ("straße", "hauptstraße 7"),
            ("a", "日本語テキスト"),
            ("日本", "日本語テキスト"),
            ("[α-ω]+", "ΑΒΓ αβγ"),
        ] {
            check(p, t);
        }
    }

    #[test]
    fn earliest_exit_still_correct_mid_text() {
        // Match found long before end of text: DFA must stop early with the
        // same verdict.
        let (dfa, program) = dfa_for("ab");
        let text = format!("ab{}", "x".repeat(1000));
        assert_eq!(dfa.is_match(&text), Some(pikevm::exec(&program, &text, 0, true).is_some()));
    }

    #[test]
    fn tiny_budget_evicts_but_stays_correct() {
        // Enough distinct states to overflow a floor-sized budget repeatedly.
        let program = Arc::new(
            compile(&parse("(a|b)(c|d)(e|f)(g|h)(i|j)k").unwrap(), CompileOptions::default())
                .unwrap(),
        );
        let dfa = LazyDfa::with_budget(program.clone(), 1).expect("dfa built");
        for text in ["acegik", "bdfhjk", "aceg", "zzzzzz", "acegika", "xacegik"] {
            let expected = pikevm::exec(&program, text, 0, true).is_some();
            let got = dfa.is_match(text);
            assert!(
                got == Some(expected) || got.is_none(),
                "wrong verdict for {text:?}: {got:?} vs {expected}"
            );
        }
    }

    #[test]
    fn hostile_patterns_fall_back_and_then_disable() {
        // A pattern whose DFA state count explodes past any budget quickly:
        // counted repetition over a class forces ~2^n subsets.
        let program = Arc::new(
            compile(&parse("[ab]*a[ab]{15}$").unwrap(), CompileOptions::default()).unwrap(),
        );
        let dfa = LazyDfa::with_budget(program.clone(), 8).expect("dfa built");
        // Aperiodic input: periodic text like "abab…" cycles through a
        // handful of states and never stresses the cache.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut fell_back = false;
        for _ in 0..16 {
            let text: String = (0..256)
                .map(|_| {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    if state >> 63 == 0 {
                        'a'
                    } else {
                        'b'
                    }
                })
                .collect();
            if dfa.is_match(&text).is_none() {
                fell_back = true;
            }
        }
        assert!(fell_back, "tiny budget on a subset-explosion pattern must fall back");
        assert!(dfa.is_match("anything").is_none(), "hostile pattern disables the DFA");
        assert!(dfa.fallback_count() >= 1);
    }

    #[test]
    fn oversized_programs_are_rejected() {
        let program =
            Arc::new(compile(&parse("(?:a{60}){60}").unwrap(), CompileOptions::default()).unwrap());
        assert!(program.insts.len() > MAX_DFA_PROGRAM);
        assert!(LazyDfa::new(program).is_none());
    }

    #[test]
    fn case_insensitive_programs_match_both_cases() {
        let program = Arc::new(
            compile(&parse("wedding band").unwrap(), CompileOptions { case_insensitive: true })
                .unwrap(),
        );
        let dfa = LazyDfa::new(program).unwrap();
        assert_eq!(dfa.is_match("Sterling Silver WEDDING BAND size 7"), Some(true));
        assert_eq!(dfa.is_match("sterling ring"), Some(false));
    }
}
