//! # rulekit-regex
//!
//! A from-scratch regular-expression engine powering the rulekit rule
//! languages (whitelist/blacklist classification rules, extraction rules,
//! generalized `\syn` rules).
//!
//! The engine is a classic three-stage design: recursive-descent
//! [`parser`](crate::parser), Thompson [`nfa`](crate::nfa) compiler, and a
//! [Pike VM](crate::pikevm) executor with capture tracking. Matching is
//! worst-case linear in `text × program` — a hard requirement when a
//! production system executes tens of thousands of analyst-written rules on
//! every incoming item (SIGMOD'15 §4, "Rule Execution and Optimization").
//!
//! Beyond matching, the crate provides the two analyses the rule-management
//! layers need:
//!
//! * [`literal_cnf`] — required-literal extraction used by the rule index to
//!   skip rules that cannot possibly match a given title;
//! * [`touch_subset`] — language containment used by rule maintenance to
//!   detect subsumed rules (`jeans?` subsumes `denim.*jeans?`).
//!
//! plus the [`AhoCorasick`] multi-pattern literal matcher the literal-scan
//! rule executor uses to find every rule's required literals in one pass
//! over a title.
//!
//! ## Example
//!
//! ```
//! use rulekit_regex::Regex;
//!
//! // The paper's §3.3 whitelist rule pattern for product type "rings".
//! let re = Regex::case_insensitive("rings?").unwrap();
//! assert!(re.is_match("Platinaire Diamond Accent Ring"));
//!
//! // Capture groups, as used by the §5.1 synonym finder.
//! let re = Regex::new(r"(\w+) oils?").unwrap();
//! let caps = re.captures("quaker state motor oil 5qt").unwrap();
//! assert_eq!(caps.get(1).unwrap().as_str(), "motor");
//! ```

pub mod aho;
pub mod ast;
pub mod contain;
pub mod dfa;
pub mod literals;
pub mod nfa;
pub mod parser;
pub mod pikevm;

pub use aho::AhoCorasick;
pub use ast::{escape, Ast};
pub use contain::{touch_subset, Containment};
pub use literals::{best_disjunction, best_indexable_disjunction, literal_cnf, Disjunction};

use nfa::{CompileOptions, Program};
use std::fmt;
use std::sync::Arc;

/// Errors produced while building a [`Regex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Syntax error in the pattern.
    Parse {
        /// Character offset where parsing failed.
        offset: usize,
        /// Human-readable description.
        message: String,
    },
    /// The compiled program would exceed internal size limits.
    TooLarge,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { offset, message } => {
                write!(f, "pattern syntax error at offset {offset}: {message}")
            }
            Error::TooLarge => write!(f, "compiled pattern exceeds size limits"),
        }
    }
}

impl std::error::Error for Error {}

/// Regex build options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Options {
    /// Fold ASCII case (`a` matches `A`). Analyst rules are written against
    /// lowercased titles, but extraction rules may want exact case.
    pub case_insensitive: bool,
}

/// A compiled regular expression.
///
/// Cheap to clone (the compiled program is shared).
#[derive(Clone)]
pub struct Regex {
    pattern: Arc<str>,
    ast: Arc<Ast>,
    program: Arc<Program>,
    /// Lazy DFA for the boolean confirmation path; `None` when the program
    /// is too large or its alphabet too fragmented (see [`dfa`]). Shared by
    /// clones so the memoized state cache warms once per pattern.
    dfa: Option<Arc<dfa::LazyDfa>>,
    options: Options,
}

impl Regex {
    /// Compiles `pattern` with default options (case-sensitive).
    pub fn new(pattern: &str) -> Result<Regex, Error> {
        Regex::with_options(pattern, Options::default())
    }

    /// Compiles `pattern` with ASCII case folding — the mode analyst
    /// classification rules use.
    pub fn case_insensitive(pattern: &str) -> Result<Regex, Error> {
        Regex::with_options(pattern, Options { case_insensitive: true })
    }

    /// Compiles `pattern` with explicit `options`.
    pub fn with_options(pattern: &str, options: Options) -> Result<Regex, Error> {
        let ast = parser::parse(pattern)?;
        let program =
            nfa::compile(&ast, CompileOptions { case_insensitive: options.case_insensitive })?;
        let program = Arc::new(program);
        let dfa = dfa::LazyDfa::new(program.clone()).map(Arc::new);
        Ok(Regex { pattern: Arc::from(pattern), ast: Arc::new(ast), program, dfa, options })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// The parsed AST (used by the analysis passes).
    pub fn ast(&self) -> &Ast {
        &self.ast
    }

    /// Build options this regex was compiled with.
    pub fn options(&self) -> Options {
        self.options
    }

    /// Number of capturing groups (excluding the implicit whole-match group).
    pub fn capture_count(&self) -> u32 {
        self.program.captures
    }

    /// Whether the pattern matches anywhere in `text`.
    ///
    /// Runs on the lazy DFA (memoized subset construction, allocation-free
    /// once warm) and falls back to the Pike VM when the DFA is unavailable
    /// or its bounded state cache thrashes. Capture extraction
    /// ([`Regex::find`], [`Regex::captures`]) always uses the Pike VM.
    pub fn is_match(&self, text: &str) -> bool {
        if let Some(dfa) = &self.dfa {
            if let Some(verdict) = dfa.is_match(text) {
                return verdict;
            }
        }
        pikevm::exec(&self.program, text, 0, true).is_some()
    }

    /// The DFA's answer alone, bypassing the Pike VM fallback: `None` when
    /// this pattern has no DFA or the search gave up. Exposed for the
    /// differential test suites; production code wants [`Regex::is_match`].
    #[doc(hidden)]
    pub fn try_match_dfa(&self, text: &str) -> Option<bool> {
        self.dfa.as_ref()?.is_match(text)
    }

    /// Leftmost-first match, if any.
    pub fn find<'t>(&self, text: &'t str) -> Option<Match<'t>> {
        self.find_at(text, 0)
    }

    /// Leftmost-first match starting at or after byte offset `start`.
    ///
    /// # Panics
    /// Panics if `start` is not a char boundary of `text`.
    pub fn find_at<'t>(&self, text: &'t str, start: usize) -> Option<Match<'t>> {
        assert!(text.is_char_boundary(start), "start must lie on a char boundary");
        let slots = pikevm::exec(&self.program, text, start, false)?;
        Some(Match {
            text,
            start: slots[0].expect("slot 0 set on match"),
            end: slots[1].expect("slot 1 set on match"),
        })
    }

    /// Iterator over all non-overlapping matches.
    pub fn find_iter<'r, 't>(&'r self, text: &'t str) -> FindIter<'r, 't> {
        FindIter { regex: self, text, next_start: 0, done: false }
    }

    /// Leftmost-first match with capture groups.
    pub fn captures<'t>(&self, text: &'t str) -> Option<Captures<'t>> {
        self.captures_at(text, 0)
    }

    /// Like [`Regex::captures`], starting at byte offset `start`.
    pub fn captures_at<'t>(&self, text: &'t str, start: usize) -> Option<Captures<'t>> {
        assert!(text.is_char_boundary(start), "start must lie on a char boundary");
        let slots = pikevm::exec(&self.program, text, start, false)?;
        Some(Captures { text, slots })
    }

    /// Required-literal CNF for indexing (see [`literals`]).
    pub fn required_literals(&self) -> Vec<Disjunction> {
        literal_cnf(&self.ast, self.options.case_insensitive)
    }

    /// Whether every text touched by `self` is also touched by `other`.
    pub fn subsumed_by(&self, other: &Regex) -> Containment {
        contain::touch_subset(
            &self.ast,
            &other.ast,
            self.options.case_insensitive || other.options.case_insensitive,
        )
    }
}

impl fmt::Debug for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Regex")
            .field("pattern", &self.pattern)
            .field("case_insensitive", &self.options.case_insensitive)
            .finish()
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pattern)
    }
}

/// A single match: a byte range of the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match<'t> {
    text: &'t str,
    start: usize,
    end: usize,
}

impl<'t> Match<'t> {
    /// Byte offset of the match start.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Byte offset one past the match end.
    pub fn end(&self) -> usize {
        self.end
    }

    /// The matched text.
    pub fn as_str(&self) -> &'t str {
        &self.text[self.start..self.end]
    }

    /// The match as a byte range.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }

    /// Whether the match is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Capture groups of a single match. Group 0 is the whole match.
#[derive(Debug, Clone)]
pub struct Captures<'t> {
    text: &'t str,
    slots: Box<[Option<usize>]>,
}

impl<'t> Captures<'t> {
    /// The `i`-th group, if it participated in the match.
    pub fn get(&self, i: usize) -> Option<Match<'t>> {
        let start = *self.slots.get(2 * i)?;
        let end = *self.slots.get(2 * i + 1)?;
        match (start, end) {
            (Some(s), Some(e)) => Some(Match { text: self.text, start: s, end: e }),
            _ => None,
        }
    }

    /// Number of groups, including group 0.
    pub fn len(&self) -> usize {
        self.slots.len() / 2
    }

    /// Always false — a `Captures` has at least group 0.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Iterator over non-overlapping matches, advancing past each match (or by
/// one character after an empty match).
pub struct FindIter<'r, 't> {
    regex: &'r Regex,
    text: &'t str,
    next_start: usize,
    done: bool,
}

impl<'t> Iterator for FindIter<'_, 't> {
    type Item = Match<'t>;

    fn next(&mut self) -> Option<Match<'t>> {
        if self.done {
            return None;
        }
        let m = self.regex.find_at(self.text, self.next_start)?;
        if m.end == m.start {
            // Empty match: step one char forward to guarantee progress.
            match self.text[m.end..].chars().next() {
                Some(c) => self.next_start = m.end + c.len_utf8(),
                None => self.done = true,
            }
        } else {
            self.next_start = m.end;
        }
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_iter_non_overlapping() {
        let re = Regex::new("aa").unwrap();
        let spans: Vec<_> = re.find_iter("aaaa").map(|m| m.range()).collect();
        assert_eq!(spans, vec![0..2, 2..4]);
    }

    #[test]
    fn find_iter_empty_matches_progress() {
        let re = Regex::new("a*").unwrap();
        let spans: Vec<_> = re.find_iter("ab").map(|m| m.range()).collect();
        assert_eq!(spans, vec![0..1, 1..1, 2..2]);
    }

    #[test]
    fn case_insensitive_matching() {
        let re = Regex::case_insensitive("wedding band").unwrap();
        assert!(re.is_match("Sterling Silver WEDDING BAND size 7"));
        assert!(!Regex::new("wedding band").unwrap().is_match("WEDDING BAND"));
    }

    #[test]
    fn captures_access() {
        let re = Regex::new("(a)(b)?").unwrap();
        let caps = re.captures("a").unwrap();
        assert_eq!(caps.len(), 3);
        assert_eq!(caps.get(0).unwrap().as_str(), "a");
        assert_eq!(caps.get(1).unwrap().as_str(), "a");
        assert!(caps.get(2).is_none());
        assert!(caps.get(9).is_none());
    }

    #[test]
    fn match_accessors() {
        let re = Regex::new("ring").unwrap();
        let m = re.find("a ring!").unwrap();
        assert_eq!((m.start(), m.end()), (2, 6));
        assert_eq!(m.as_str(), "ring");
        assert!(!m.is_empty());
    }

    #[test]
    fn display_and_debug() {
        let re = Regex::case_insensitive("rings?").unwrap();
        assert_eq!(re.to_string(), "rings?");
        assert!(format!("{re:?}").contains("rings?"));
    }

    #[test]
    fn clone_shares_program() {
        let re = Regex::new("rings?").unwrap();
        let re2 = re.clone();
        assert!(re2.is_match("ring"));
        assert_eq!(re.pattern(), re2.pattern());
    }

    #[test]
    fn error_display() {
        let err = Regex::new("(a").unwrap_err();
        assert!(err.to_string().contains("syntax error"));
    }

    #[test]
    #[should_panic(expected = "char boundary")]
    fn find_at_rejects_mid_char_offsets() {
        let re = Regex::new("a").unwrap();
        let _ = re.find_at("héllo", 2);
    }
}
