//! Required-literal analysis.
//!
//! For rule indexing (§4 "Rule Execution and Optimization") we need, for each
//! rule pattern, evidence that lets an index skip the rule without running the
//! full matcher. This module extracts a CNF of literal requirements: a list of
//! disjunctions `D₁, D₂, …` such that **every** matching text contains, for
//! each `Dᵢ`, at least one of its strings as a contiguous substring.
//!
//! Example: `(motor|engine) oils?` yields
//! `[[ "motor", "engine" ], [ " oil" ]]` — a title that contains neither
//! "motor" nor "engine" can never match, so the rule need not run on it.

use crate::ast::Ast;

/// A single requirement: at least one of these substrings must appear.
pub type Disjunction = Vec<String>;

/// Extracts the literal CNF for `ast`.
///
/// `case_insensitive` lowercases extracted literals (callers must then match
/// them against lowercased text). Returns an empty list when nothing useful
/// can be guaranteed (e.g. pattern `\w+`).
pub fn literal_cnf(ast: &Ast, case_insensitive: bool) -> Vec<Disjunction> {
    let mut out = Vec::new();
    collect(ast, case_insensitive, &mut out);
    // Deduplicate within each disjunction; drop disjunctions that contain the
    // empty string (vacuously true) or that duplicate another.
    for d in &mut out {
        d.sort();
        d.dedup();
    }
    out.retain(|d| !d.is_empty() && d.iter().all(|s| !s.is_empty()));
    out.sort();
    out.dedup();
    out
}

/// Picks the best single disjunction for index lookup: prefer disjunctions
/// whose shortest string is longest, then fewer alternatives.
pub fn best_disjunction(cnf: &[Disjunction]) -> Option<&Disjunction> {
    cnf.iter().max_by_key(|d| {
        let min_len = d.iter().map(|s| s.chars().count()).min().unwrap_or(0);
        (min_len, std::cmp::Reverse(d.len()))
    })
}

/// [`best_disjunction`] restricted to disjunctions an n-gram index can key
/// on: every literal ASCII and at least `min_len` bytes long. Returns `None`
/// when no disjunction qualifies (the rule must then be admitted another
/// way). Shared by the trigram rule index and the data-side title index so
/// their admission predicates can never drift apart.
pub fn best_indexable_disjunction(cnf: &[Disjunction], min_len: usize) -> Option<&Disjunction> {
    let indexable: Vec<&Disjunction> =
        cnf.iter().filter(|d| d.iter().all(|lit| lit.len() >= min_len && lit.is_ascii())).collect();
    indexable
        .iter()
        .max_by_key(|d| {
            let shortest = d.iter().map(|s| s.chars().count()).min().unwrap_or(0);
            (shortest, std::cmp::Reverse(d.len()))
        })
        .copied()
}

fn collect(ast: &Ast, ci: bool, out: &mut Vec<Disjunction>) {
    match ast {
        Ast::Concat(parts) => {
            // Merge adjacent literal characters into runs; recurse elsewhere.
            let mut run = String::new();
            for part in parts {
                match part {
                    Ast::Literal(c) => {
                        push_char(&mut run, *c, ci);
                    }
                    // A trailing optional after a literal run (`oils?`) does
                    // not break the run's guarantee — "oil" still required.
                    _ => {
                        flush_run(&mut run, out);
                        collect(part, ci, out);
                    }
                }
            }
            flush_run(&mut run, out);
        }
        Ast::Alternate(arms) => {
            // Every arm must yield something; the requirement is the union of
            // one representative disjunction per arm.
            let mut union = Vec::new();
            for arm in arms {
                let mut arm_cnf = Vec::new();
                collect(arm, ci, &mut arm_cnf);
                let Some(best) = best_disjunction(&arm_cnf) else {
                    return; // one arm has no requirement ⇒ alternation has none
                };
                union.extend(best.iter().cloned());
            }
            out.push(union);
        }
        Ast::Group { inner, .. } => collect(inner, ci, out),
        Ast::Repeat { inner, min, .. } if *min >= 1 => collect(inner, ci, out),
        // min == 0 repeats, classes, dot, anchors, empty: no guarantee.
        _ => {}
    }
}

fn push_char(run: &mut String, c: char, ci: bool) {
    if ci {
        for folded in c.to_lowercase() {
            run.push(folded);
        }
    } else {
        run.push(c);
    }
}

fn flush_run(run: &mut String, out: &mut Vec<Disjunction>) {
    if !run.is_empty() {
        out.push(vec![std::mem::take(run)]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn cnf(pattern: &str) -> Vec<Disjunction> {
        literal_cnf(&parse(pattern).unwrap(), true)
    }

    #[test]
    fn plain_literal() {
        assert_eq!(cnf("ring"), vec![vec!["ring".to_string()]]);
    }

    #[test]
    fn optional_suffix_keeps_stem() {
        // `rings?` guarantees "ring".
        assert_eq!(cnf("rings?"), vec![vec!["ring".to_string()]]);
    }

    #[test]
    fn dotstar_splits_runs() {
        // `diamond.*trio sets?` guarantees "diamond" AND "trio set".
        let c = cnf("diamond.*trio sets?");
        assert!(c.contains(&vec!["diamond".to_string()]));
        assert!(c.contains(&vec!["trio set".to_string()]));
    }

    #[test]
    fn alternation_unions_arms() {
        let c = cnf("(motor|engine) oils?");
        assert!(c.contains(&vec!["engine".to_string(), "motor".to_string()]));
        assert!(c.contains(&vec![" oil".to_string()]));
    }

    #[test]
    fn nested_alternation() {
        let c = cnf("(abrasive|sand(er|ing))[ -](wheels?|discs?)");
        // Arm "sand(er|ing)" guarantees "sand"; arm "abrasive" guarantees itself.
        assert!(c
            .iter()
            .any(|d| d.contains(&"abrasive".to_string()) && d.contains(&"sand".to_string())));
        assert!(c
            .iter()
            .any(|d| d.contains(&"wheel".to_string()) && d.contains(&"disc".to_string())));
    }

    #[test]
    fn unbounded_class_has_no_requirement() {
        assert!(cnf(r"\w+").is_empty());
        assert!(cnf(".*").is_empty());
    }

    #[test]
    fn alternation_with_unanalyzable_arm_is_dropped() {
        // One arm is `\w+`: no guarantee can be made for the alternation.
        let c = cnf(r"(motor|\w+) oils?");
        assert!(!c.iter().any(|d| d.contains(&"motor".to_string())));
        // …but the " oil" run after the group is still required.
        assert!(c.contains(&vec![" oil".to_string()]));
    }

    #[test]
    fn case_insensitive_lowercases() {
        assert_eq!(cnf("Ring"), vec![vec!["ring".to_string()]]);
        let sensitive = literal_cnf(&parse("Ring").unwrap(), false);
        assert_eq!(sensitive, vec![vec!["Ring".to_string()]]);
    }

    #[test]
    fn plus_keeps_requirement_star_does_not() {
        assert_eq!(cnf("(?:ring)+"), vec![vec!["ring".to_string()]]);
        assert!(cnf("(?:ring)*").is_empty());
    }

    #[test]
    fn best_disjunction_prefers_long_then_narrow() {
        let c = cnf("(motor|engine) oils?");
        // " oil" (min len 4) wins over {motor, engine} (min len 5)? No:
        // "motor"/"engine" min len is 5 > 4, so the alternation wins.
        let best = best_disjunction(&c).unwrap();
        assert_eq!(best, &vec!["engine".to_string(), "motor".to_string()]);
    }

    #[test]
    fn counted_repeat_keeps_requirement() {
        assert_eq!(cnf("(?:ab){2,3}"), vec![vec!["ab".to_string()]]);
        assert!(cnf("(?:ab){0,3}").is_empty());
    }
}
