//! Thompson NFA compiler: turns an [`Ast`] into a linear instruction program
//! executed by the Pike VM.

use crate::ast::{Ast, ClassSet};
use crate::Error;

/// Hard cap on compiled program size, guarding against pathological counted
/// repetition blow-up (`(a{900}){900}` style).
const MAX_PROGRAM: usize = 1 << 18;

/// One NFA instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// Consume one character if it falls into one of the (sorted, merged)
    /// inclusive ranges, then go to the next instruction.
    Ranges(Box<[(char, char)]>),
    /// Consume any character except `\n`.
    Any,
    /// Try `goto1` first (higher priority), then `goto2`.
    Split(u32, u32),
    /// Unconditional jump.
    Jump(u32),
    /// Store the current input position into capture slot `slot`.
    Save(u32),
    /// Zero-width assertion: start of text.
    AssertStart,
    /// Zero-width assertion: end of text.
    AssertEnd,
    /// Accept.
    Match,
}

/// A compiled program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Instruction list; execution starts at instruction 0.
    pub insts: Vec<Inst>,
    /// Number of capture slots (2 × (capturing groups + 1)).
    pub slots: usize,
    /// Number of capturing groups, excluding the implicit group 0.
    pub captures: u32,
    /// Whether every match must begin at position 0 (pattern starts with `^`
    /// on every alternation path).
    pub anchored_start: bool,
}

/// Compilation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompileOptions {
    /// Fold ASCII case: `a` matches `A`.
    pub case_insensitive: bool,
}

/// Compiles `ast` to a [`Program`].
pub fn compile(ast: &Ast, opts: CompileOptions) -> Result<Program, Error> {
    let captures = ast.capture_count();
    let mut c = Compiler { insts: Vec::new(), opts };
    c.push(Inst::Save(0))?;
    c.emit(ast)?;
    c.push(Inst::Save(1))?;
    c.push(Inst::Match)?;
    let anchored_start = starts_anchored(ast);
    Ok(Program { insts: c.insts, slots: 2 * (captures as usize + 1), captures, anchored_start })
}

/// Whether every path through `ast` begins with `^`.
fn starts_anchored(ast: &Ast) -> bool {
    match ast {
        Ast::StartAnchor => true,
        Ast::Group { inner, .. } => starts_anchored(inner),
        Ast::Concat(parts) => parts.first().is_some_and(starts_anchored),
        Ast::Alternate(arms) => !arms.is_empty() && arms.iter().all(starts_anchored),
        Ast::Repeat { inner, min, .. } => *min >= 1 && starts_anchored(inner),
        _ => false,
    }
}

struct Compiler {
    insts: Vec<Inst>,
    opts: CompileOptions,
}

impl Compiler {
    fn push(&mut self, inst: Inst) -> Result<u32, Error> {
        if self.insts.len() >= MAX_PROGRAM {
            return Err(Error::TooLarge);
        }
        self.insts.push(inst);
        Ok((self.insts.len() - 1) as u32)
    }

    fn next_pc(&self) -> u32 {
        self.insts.len() as u32
    }

    fn patch_split_second(&mut self, at: u32, to: u32) {
        if let Inst::Split(_, second) = &mut self.insts[at as usize] {
            *second = to;
        } else {
            unreachable!("patch target is not a split");
        }
    }

    fn set_split(&mut self, at: u32, first: u32, second: u32) {
        if let Inst::Split(f, s) = &mut self.insts[at as usize] {
            *f = first;
            *s = second;
        } else {
            unreachable!("patch target is not a split");
        }
    }

    fn patch_jump(&mut self, at: u32, to: u32) {
        if let Inst::Jump(t) = &mut self.insts[at as usize] {
            *t = to;
        } else {
            unreachable!("patch target is not a jump");
        }
    }

    fn char_inst(&self, c: char) -> Inst {
        if self.opts.case_insensitive && c.is_ascii_alphabetic() {
            let lo = c.to_ascii_lowercase();
            let up = c.to_ascii_uppercase();
            let mut ranges = vec![(up, up), (lo, lo)];
            ranges.sort_unstable();
            Inst::Ranges(ranges.into_boxed_slice())
        } else {
            Inst::Ranges(Box::new([(c, c)]))
        }
    }

    fn class_inst(&self, set: &ClassSet) -> Inst {
        let mut set = set.clone();
        if self.opts.case_insensitive {
            // Fold before resolving negation so `[^a]` also excludes `A`.
            set.case_fold();
        }
        set.canonicalize();
        Inst::Ranges(set.ranges.into_boxed_slice())
    }

    fn emit(&mut self, ast: &Ast) -> Result<(), Error> {
        match ast {
            Ast::Empty => Ok(()),
            Ast::Literal(c) => {
                let inst = self.char_inst(*c);
                self.push(inst)?;
                Ok(())
            }
            Ast::AnyChar => {
                self.push(Inst::Any)?;
                Ok(())
            }
            Ast::Class(set) => {
                let inst = self.class_inst(set);
                self.push(inst)?;
                Ok(())
            }
            Ast::StartAnchor => {
                self.push(Inst::AssertStart)?;
                Ok(())
            }
            Ast::EndAnchor => {
                self.push(Inst::AssertEnd)?;
                Ok(())
            }
            Ast::Group { index, inner } => {
                if let Some(i) = index {
                    self.push(Inst::Save(2 * i))?;
                    self.emit(inner)?;
                    self.push(Inst::Save(2 * i + 1))?;
                } else {
                    self.emit(inner)?;
                }
                Ok(())
            }
            Ast::Concat(parts) => {
                for p in parts {
                    self.emit(p)?;
                }
                Ok(())
            }
            Ast::Alternate(arms) => {
                // Chain of splits; each arm ends with a jump to the join point.
                let mut jumps = Vec::with_capacity(arms.len());
                let mut pending_split: Option<u32> = None;
                for (i, arm) in arms.iter().enumerate() {
                    if let Some(split) = pending_split.take() {
                        let here = self.next_pc();
                        self.patch_split_second(split, here);
                    }
                    if i + 1 < arms.len() {
                        let split = self.push(Inst::Split(self.next_pc() + 1, 0))?;
                        pending_split = Some(split);
                    }
                    self.emit(arm)?;
                    if i + 1 < arms.len() {
                        jumps.push(self.push(Inst::Jump(0))?);
                    }
                }
                let join = self.next_pc();
                for j in jumps {
                    self.patch_jump(j, join);
                }
                Ok(())
            }
            Ast::Repeat { inner, min, max, greedy } => self.emit_repeat(inner, *min, *max, *greedy),
        }
    }

    fn emit_repeat(
        &mut self,
        inner: &Ast,
        min: u32,
        max: Option<u32>,
        greedy: bool,
    ) -> Result<(), Error> {
        match (min, max) {
            (0, Some(1)) => {
                // e? : split(body, after); greedy prefers body, lazy after.
                let split = self.push(Inst::Split(0, 0))?;
                let body = self.next_pc();
                self.emit(inner)?;
                let after = self.next_pc();
                if greedy {
                    self.set_split(split, body, after);
                } else {
                    self.set_split(split, after, body);
                }
                Ok(())
            }
            (0, None) => {
                // e* : L: split(body, after); body; jump L
                let split = self.push(Inst::Split(0, 0))?;
                let body = self.next_pc();
                self.emit(inner)?;
                self.push(Inst::Jump(split))?;
                let after = self.next_pc();
                if greedy {
                    self.set_split(split, body, after);
                } else {
                    self.set_split(split, after, body);
                }
                Ok(())
            }
            (1, None) => {
                // e+ : body; split(body, after)
                let body = self.next_pc();
                self.emit(inner)?;
                if greedy {
                    self.push(Inst::Split(body, self.next_pc() + 1))?;
                } else {
                    self.push(Inst::Split(self.next_pc() + 1, body))?;
                }
                Ok(())
            }
            (m, None) => {
                // e{m,} : m-1 copies then e+
                for _ in 0..m.saturating_sub(1) {
                    self.emit(inner)?;
                }
                self.emit_repeat(inner, 1, None, greedy)
            }
            (m, Some(n)) => {
                // e{m,n} : m mandatory copies, n-m optional (nested so that a
                // later optional is only tried when the earlier one matched).
                for _ in 0..m {
                    self.emit(inner)?;
                }
                let optional = n - m;
                let mut splits = Vec::with_capacity(optional as usize);
                for _ in 0..optional {
                    let split = self.push(Inst::Split(0, 0))?;
                    splits.push((split, self.next_pc()));
                    self.emit(inner)?;
                }
                let after = self.next_pc();
                for (split, body) in splits {
                    if greedy {
                        self.set_split(split, body, after);
                    } else {
                        self.set_split(split, after, body);
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn program(pattern: &str) -> Program {
        compile(&parse(pattern).unwrap(), CompileOptions::default()).unwrap()
    }

    #[test]
    fn literal_program_shape() {
        let p = program("ab");
        assert_eq!(
            p.insts,
            vec![
                Inst::Save(0),
                Inst::Ranges(Box::new([('a', 'a')])),
                Inst::Ranges(Box::new([('b', 'b')])),
                Inst::Save(1),
                Inst::Match,
            ]
        );
        assert_eq!(p.slots, 2);
    }

    #[test]
    fn capture_slots_counted() {
        let p = program("(a)(b)");
        assert_eq!(p.captures, 2);
        assert_eq!(p.slots, 6);
    }

    #[test]
    fn case_insensitive_literal_ranges() {
        let ast = parse("a").unwrap();
        let p = compile(&ast, CompileOptions { case_insensitive: true }).unwrap();
        assert_eq!(p.insts[1], Inst::Ranges(Box::new([('A', 'A'), ('a', 'a')])));
    }

    #[test]
    fn anchored_start_detection() {
        assert!(program("^abc").anchored_start);
        assert!(program("^a|^b").anchored_start);
        assert!(!program("a|^b").anchored_start);
        assert!(!program("abc").anchored_start);
        assert!(program("(^a)+").anchored_start);
        assert!(!program("(^a)*x").anchored_start);
    }

    #[test]
    fn counted_repetition_expands() {
        let p = program("a{3}");
        let chars = p.insts.iter().filter(|i| matches!(i, Inst::Ranges(_))).count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn bounded_repetition_has_optional_tail() {
        let p = program("a{1,3}");
        let chars = p.insts.iter().filter(|i| matches!(i, Inst::Ranges(_))).count();
        let splits = p.insts.iter().filter(|i| matches!(i, Inst::Split(_, _))).count();
        assert_eq!(chars, 3);
        assert_eq!(splits, 2);
    }

    #[test]
    fn program_size_guard() {
        // 900 * 900 copies would exceed MAX_PROGRAM.
        let ast = parse("(?:a{900}){900}").unwrap();
        assert!(matches!(compile(&ast, CompileOptions::default()), Err(Error::TooLarge)));
    }
}
