//! Recursive-descent parser for the rulekit pattern language.

use crate::ast::{Ast, ClassSet};
use crate::Error;

/// Maximum quantifier bound accepted (`a{0,1000}` is fine, `a{0,100000}` is
/// rejected to keep compiled programs small).
const MAX_REPEAT: u32 = 1000;

/// Parses `pattern` into an [`Ast`].
pub fn parse(pattern: &str) -> Result<Ast, Error> {
    let mut p = Parser { chars: pattern.chars().collect(), pos: 0, next_capture: 1, depth: 0 };
    let ast = p.parse_alternation()?;
    if p.pos != p.chars.len() {
        return Err(p.err("unexpected ')'"));
    }
    Ok(ast)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    next_capture: u32,
    depth: usize,
}

impl Parser {
    fn err(&self, msg: &str) -> Error {
        Error::Parse { offset: self.pos, message: msg.to_string() }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// `alternation := concat ('|' concat)*`
    fn parse_alternation(&mut self) -> Result<Ast, Error> {
        let mut arms = vec![self.parse_concat()?];
        while self.eat('|') {
            arms.push(self.parse_concat()?);
        }
        Ok(Ast::alternate(arms))
    }

    /// `concat := repeat*` — stops at `|` or `)` or end.
    fn parse_concat(&mut self) -> Result<Ast, Error> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        Ok(Ast::concat(parts))
    }

    /// `repeat := atom quantifier?`
    fn parse_repeat(&mut self) -> Result<Ast, Error> {
        let atom = self.parse_atom()?;
        let (min, max) = match self.peek() {
            Some('?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some('*') => {
                self.pos += 1;
                (0, None)
            }
            Some('+') => {
                self.pos += 1;
                (1, None)
            }
            Some('{') => {
                // `{` not followed by a valid bound is a literal `{`.
                match self.try_parse_counted()? {
                    Some(bounds) => bounds,
                    None => return Ok(atom),
                }
            }
            _ => return Ok(atom),
        };
        if matches!(atom, Ast::StartAnchor | Ast::EndAnchor) {
            return Err(self.err("quantifier follows an anchor"));
        }
        if let Some(m) = max {
            if min > m {
                return Err(self.err("quantifier min exceeds max"));
            }
        }
        let greedy = !self.eat('?');
        Ok(Ast::Repeat { inner: Box::new(atom), min, max, greedy })
    }

    /// Parses `{m}`, `{m,}` or `{m,n}`. Returns `None` (and rewinds) when the
    /// braces do not form a quantifier, in which case `{` is a literal.
    fn try_parse_counted(&mut self) -> Result<Option<(u32, Option<u32>)>, Error> {
        let start = self.pos;
        debug_assert_eq!(self.peek(), Some('{'));
        self.pos += 1;
        let min = match self.parse_number() {
            Some(n) => n,
            None => {
                self.pos = start;
                return Ok(None);
            }
        };
        let bounds = if self.eat(',') {
            if self.peek() == Some('}') {
                (min, None)
            } else {
                match self.parse_number() {
                    Some(n) => (min, Some(n)),
                    None => {
                        self.pos = start;
                        return Ok(None);
                    }
                }
            }
        } else {
            (min, Some(min))
        };
        if !self.eat('}') {
            self.pos = start;
            return Ok(None);
        }
        if bounds.0 > MAX_REPEAT || bounds.1.is_some_and(|n| n > MAX_REPEAT) {
            return Err(self.err("quantifier bound too large"));
        }
        Ok(Some(bounds))
    }

    fn parse_number(&mut self) -> Option<u32> {
        let start = self.pos;
        let mut value: u32 = 0;
        while let Some(c) = self.peek() {
            let Some(d) = c.to_digit(10) else { break };
            value = value.checked_mul(10)?.checked_add(d)?;
            self.pos += 1;
        }
        if self.pos == start {
            None
        } else {
            Some(value)
        }
    }

    /// `atom := group | class | escape | anchor | '.' | literal`
    fn parse_atom(&mut self) -> Result<Ast, Error> {
        let c = self.bump().ok_or_else(|| self.err("unexpected end of pattern"))?;
        match c {
            '(' => self.parse_group(),
            '[' => self.parse_class().map(Ast::Class),
            '\\' => self.parse_escape(),
            '.' => Ok(Ast::AnyChar),
            '^' => Ok(Ast::StartAnchor),
            '$' => Ok(Ast::EndAnchor),
            '*' | '+' | '?' => {
                self.pos -= 1;
                Err(self.err("quantifier with nothing to repeat"))
            }
            _ => Ok(Ast::Literal(c)),
        }
    }

    fn parse_group(&mut self) -> Result<Ast, Error> {
        self.depth += 1;
        if self.depth > 64 {
            return Err(self.err("groups nested too deeply"));
        }
        let index = if self.peek() == Some('?') {
            if self.chars.get(self.pos + 1) == Some(&':') {
                self.pos += 2;
                None
            } else {
                return Err(self.err("unsupported group flag (only (?:…) is supported)"));
            }
        } else {
            let i = self.next_capture;
            self.next_capture += 1;
            Some(i)
        };
        let inner = self.parse_alternation()?;
        if !self.eat(')') {
            return Err(self.err("missing closing ')'"));
        }
        self.depth -= 1;
        Ok(Ast::Group { index, inner: Box::new(inner) })
    }

    fn parse_escape(&mut self) -> Result<Ast, Error> {
        let c = self.bump().ok_or_else(|| self.err("dangling escape"))?;
        match c {
            'w' => Ok(Ast::Class(ClassSet::word())),
            'W' => {
                let mut set = ClassSet::word();
                set.negated = true;
                Ok(Ast::Class(set))
            }
            'd' => Ok(Ast::Class(ClassSet::digit())),
            'D' => {
                let mut set = ClassSet::digit();
                set.negated = true;
                Ok(Ast::Class(set))
            }
            's' => Ok(Ast::Class(ClassSet::space())),
            'S' => {
                let mut set = ClassSet::space();
                set.negated = true;
                Ok(Ast::Class(set))
            }
            'n' => Ok(Ast::Literal('\n')),
            't' => Ok(Ast::Literal('\t')),
            'r' => Ok(Ast::Literal('\r')),
            'b' => Err(self.err("word boundaries are not supported")),
            _ if c.is_ascii_alphanumeric() => Err(self.err("unknown escape sequence")),
            _ => Ok(Ast::Literal(c)),
        }
    }

    /// Parses the body of a `[...]` class (the `[` has been consumed).
    fn parse_class(&mut self) -> Result<ClassSet, Error> {
        let mut set = ClassSet::new();
        set.negated = self.eat('^');
        let mut first = true;
        loop {
            let c = self.bump().ok_or_else(|| self.err("missing closing ']'"))?;
            match c {
                ']' if !first => break,
                '\\' => {
                    let item = self.parse_class_escape()?;
                    match item {
                        ClassItem::Char(lo) => self.class_char_or_range(&mut set, lo)?,
                        ClassItem::Set(s) => {
                            if s.negated {
                                // `[^\W]`-style double negation: resolve now.
                                let mut s = s;
                                s.canonicalize();
                                set.ranges.extend(s.ranges);
                            } else {
                                set.ranges.extend(s.ranges);
                            }
                        }
                    }
                }
                _ => self.class_char_or_range(&mut set, c)?,
            }
            first = false;
        }
        Ok(set)
    }

    /// Handles `c` possibly starting a range `c-d` inside a class.
    fn class_char_or_range(&mut self, set: &mut ClassSet, lo: char) -> Result<(), Error> {
        if self.peek() == Some('-') && self.chars.get(self.pos + 1).is_some_and(|&n| n != ']') {
            self.pos += 1; // consume '-'
            let hi = match self.bump().ok_or_else(|| self.err("missing closing ']'"))? {
                '\\' => match self.parse_class_escape()? {
                    ClassItem::Char(c) => c,
                    ClassItem::Set(_) => {
                        return Err(self.err("character class cannot be a range endpoint"))
                    }
                },
                c => c,
            };
            if lo > hi {
                return Err(self.err("invalid range (start exceeds end)"));
            }
            set.push_range(lo, hi);
        } else {
            set.push_char(lo);
        }
        Ok(())
    }

    fn parse_class_escape(&mut self) -> Result<ClassItem, Error> {
        let c = self.bump().ok_or_else(|| self.err("dangling escape in class"))?;
        Ok(match c {
            'w' => ClassItem::Set(ClassSet::word()),
            'd' => ClassItem::Set(ClassSet::digit()),
            's' => ClassItem::Set(ClassSet::space()),
            'W' => {
                let mut s = ClassSet::word();
                s.negated = true;
                ClassItem::Set(s)
            }
            'D' => {
                let mut s = ClassSet::digit();
                s.negated = true;
                ClassItem::Set(s)
            }
            'S' => {
                let mut s = ClassSet::space();
                s.negated = true;
                ClassItem::Set(s)
            }
            'n' => ClassItem::Char('\n'),
            't' => ClassItem::Char('\t'),
            'r' => ClassItem::Char('\r'),
            _ if c.is_ascii_alphanumeric() => {
                return Err(self.err("unknown escape sequence in class"))
            }
            _ => ClassItem::Char(c),
        })
    }
}

enum ClassItem {
    Char(char),
    Set(ClassSet),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(pattern: &str) -> Ast {
        parse(pattern).unwrap_or_else(|e| panic!("parse {pattern:?} failed: {e}"))
    }

    #[test]
    fn parses_paper_rule_rings() {
        // "rings?" from §3.3.
        let ast = ok("rings?");
        assert_eq!(ast.to_string(), "rings?");
    }

    #[test]
    fn parses_paper_rule_trio_sets() {
        // "diamond.*trio sets?" from §3.3.
        let ast = ok("diamond.*trio sets?");
        assert_eq!(ast.capture_count(), 0);
    }

    #[test]
    fn parses_paper_rule_motor_oil() {
        // Rule R2 from §5.1.
        let ast = ok(
            "(motor|engine|auto(motive)?|car|truck|suv|van|vehicle|motorcycle|pick[ -]?up|scooter|atv|boat)(oil|lubricant)s?",
        );
        assert_eq!(ast.capture_count(), 3);
    }

    #[test]
    fn parses_paper_rule_abrasive() {
        // From §4: "(abrasive|sand(er|ing))[ -](wheels?|discs?)".
        let ast = ok("(abrasive|sand(er|ing))[ -](wheels?|discs?)");
        assert_eq!(ast.capture_count(), 3);
    }

    #[test]
    fn parses_generalized_synonym_regexes() {
        // From §5.1: "(\w+\s+\w+) oils?".
        let ast = ok(r"(\w+\s+\w+) oils?");
        assert_eq!(ast.capture_count(), 1);
    }

    #[test]
    fn space_dash_class_is_literal_dash() {
        let Ast::Class(mut set) = ok("[ -]") else { panic!("expected class") };
        set.canonicalize();
        assert!(set.contains(' '));
        assert!(set.contains('-'));
        assert!(!set.contains('!'));
    }

    #[test]
    fn dash_at_start_of_class_is_literal() {
        let Ast::Class(mut set) = ok("[-a]") else { panic!("expected class") };
        set.canonicalize();
        assert!(set.contains('-'));
        assert!(set.contains('a'));
    }

    #[test]
    fn counted_repetition_bounds() {
        let Ast::Repeat { min, max, .. } = ok("a{2,5}") else { panic!("expected repeat") };
        assert_eq!((min, max), (2, Some(5)));
        let Ast::Repeat { min, max, .. } = ok("a{3}") else { panic!("expected repeat") };
        assert_eq!((min, max), (3, Some(3)));
        let Ast::Repeat { min, max, .. } = ok("a{4,}") else { panic!("expected repeat") };
        assert_eq!((min, max), (4, None));
    }

    #[test]
    fn brace_without_bounds_is_literal() {
        let ast = ok("a{b}");
        assert_eq!(
            ast,
            Ast::Concat(vec![
                Ast::Literal('a'),
                Ast::Literal('{'),
                Ast::Literal('b'),
                Ast::Literal('}')
            ])
        );
    }

    #[test]
    fn lazy_quantifiers() {
        let Ast::Repeat { greedy, .. } = ok("a*?") else { panic!("expected repeat") };
        assert!(!greedy);
        let Ast::Concat(parts) = ok(".*?b") else { panic!("expected concat") };
        assert!(matches!(parts[0], Ast::Repeat { greedy: false, .. }));
    }

    #[test]
    fn non_capturing_group() {
        let Ast::Group { index, .. } = ok("(?:ab)") else { panic!("expected group") };
        assert!(index.is_none());
    }

    #[test]
    fn capture_indices_assigned_in_order() {
        let ast = ok("(a)(?:b)(c(d))");
        assert_eq!(ast.capture_count(), 3);
    }

    #[test]
    fn errors_on_unbalanced_parens() {
        assert!(parse("(ab").is_err());
        assert!(parse("ab)").is_err());
    }

    #[test]
    fn errors_on_dangling_quantifier() {
        assert!(parse("*a").is_err());
        assert!(parse("|*").is_err());
    }

    #[test]
    fn errors_on_bad_range() {
        assert!(parse("[z-a]").is_err());
    }

    #[test]
    fn errors_on_huge_bound() {
        assert!(parse("a{0,100000}").is_err());
    }

    #[test]
    fn errors_on_min_exceeds_max() {
        assert!(parse("a{5,2}").is_err());
    }

    #[test]
    fn empty_pattern_and_empty_arms() {
        assert_eq!(ok(""), Ast::Empty);
        let ast = ok("a|");
        assert_eq!(ast, Ast::Alternate(vec![Ast::Literal('a'), Ast::Empty]));
    }

    #[test]
    fn escaped_meta_characters_are_literals() {
        let ast = ok(r"\.\*\(\)");
        assert_eq!(
            ast,
            Ast::Concat(vec![
                Ast::Literal('.'),
                Ast::Literal('*'),
                Ast::Literal('('),
                Ast::Literal(')'),
            ])
        );
    }

    #[test]
    fn class_with_embedded_perl_classes() {
        let Ast::Class(mut set) = ok(r"[\w.-]") else { panic!("expected class") };
        set.canonicalize();
        assert!(set.contains('a'));
        assert!(set.contains('.'));
        assert!(set.contains('-'));
        assert!(!set.contains(' '));
    }

    #[test]
    fn negated_class() {
        let Ast::Class(mut set) = ok("[^0-9]") else { panic!("expected class") };
        set.canonicalize();
        assert!(set.contains('a'));
        assert!(!set.contains('5'));
    }

    #[test]
    fn anchors_parse() {
        let ast = ok("^ab$");
        let Ast::Concat(parts) = ast else { panic!("expected concat") };
        assert!(matches!(parts[0], Ast::StartAnchor));
        assert!(matches!(parts[3], Ast::EndAnchor));
    }

    #[test]
    fn quantified_anchor_rejected() {
        assert!(parse("^*").is_err());
    }
}
