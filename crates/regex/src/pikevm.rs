//! Pike VM: breadth-first NFA simulation with capture tracking.
//!
//! Gives leftmost-first match semantics (like the mainstream `regex` crates)
//! in worst-case `O(len(text) × len(program))` time — no exponential blow-up,
//! which matters when tens of thousands of analyst-written rules run over
//! every incoming title.

use crate::nfa::{Inst, Program};
use std::rc::Rc;

/// Capture slots for one thread. `Rc` keeps thread forking cheap;
/// copy-on-write happens only at `Save` instructions.
type Slots = Rc<Box<[Option<usize>]>>;

/// A priority-ordered list of NFA threads with O(1) dedup by pc.
struct ThreadList {
    dense: Vec<(u32, Slots)>,
    seen: SparseSet,
}

impl ThreadList {
    fn new(insts: usize) -> Self {
        ThreadList { dense: Vec::new(), seen: SparseSet::new(insts) }
    }

    fn clear(&mut self) {
        self.dense.clear();
        self.seen.clear();
    }
}

/// Constant-time clearable membership set over instruction indices.
struct SparseSet {
    sparse: Vec<u32>,
    dense: Vec<u32>,
}

impl SparseSet {
    fn new(capacity: usize) -> Self {
        SparseSet { sparse: vec![0; capacity], dense: Vec::with_capacity(capacity) }
    }

    fn insert(&mut self, value: u32) -> bool {
        if self.contains(value) {
            return false;
        }
        self.sparse[value as usize] = self.dense.len() as u32;
        self.dense.push(value);
        true
    }

    fn contains(&self, value: u32) -> bool {
        let i = self.sparse[value as usize] as usize;
        self.dense.get(i) == Some(&value)
    }

    fn clear(&mut self) {
        self.dense.clear();
    }
}

/// Executes `program` over `text` starting at byte offset `start`.
///
/// Returns the capture slots of the leftmost-first match, or `None`.
/// When `earliest` is true, returns as soon as any match is known (used by
/// `is_match`, which does not need the full greedy extent).
pub fn exec(
    program: &Program,
    text: &str,
    start: usize,
    earliest: bool,
) -> Option<Box<[Option<usize>]>> {
    debug_assert!(text.is_char_boundary(start));
    let mut clist = ThreadList::new(program.insts.len());
    let mut nlist = ThreadList::new(program.insts.len());
    let mut matched: Option<Slots> = None;

    let init: Slots = Rc::new(vec![None; program.slots].into_boxed_slice());
    let text_len = text.len();
    let mut pos = start;
    let mut chars = text[start..].char_indices().map(|(i, c)| (start + i, c));
    let mut current: Option<(usize, char)> = chars.next();

    loop {
        // Seed a new thread at this position unless anchored or already matched.
        if matched.is_none() && (!program.anchored_start || pos == start) {
            add_thread(program, &mut clist, 0, pos, text_len, init.clone());
        }
        if clist.dense.is_empty() && matched.is_some() {
            break;
        }
        if earliest && matched.is_some() {
            break;
        }

        let (cur_pos, cur_char) = match current {
            Some((p, c)) => {
                debug_assert_eq!(p, pos);
                (p, Some(c))
            }
            None => (pos, None),
        };
        let next_pos = cur_char.map_or(cur_pos, |c| cur_pos + c.len_utf8());

        let mut i = 0;
        while i < clist.dense.len() {
            let (pc, slots) = clist.dense[i].clone();
            match &program.insts[pc as usize] {
                Inst::Ranges(ranges) => {
                    if let Some(c) = cur_char {
                        if ranges_contain(ranges, c) {
                            add_thread(program, &mut nlist, pc + 1, next_pos, text_len, slots);
                        }
                    }
                }
                Inst::Any => {
                    if let Some(c) = cur_char {
                        if c != '\n' {
                            add_thread(program, &mut nlist, pc + 1, next_pos, text_len, slots);
                        }
                    }
                }
                Inst::Match => {
                    // This thread matched at `cur_pos`; all lower-priority
                    // threads in clist are discarded, but nlist survivors
                    // (added by higher-priority threads) stay.
                    matched = Some(slots);
                    break;
                }
                // Epsilon instructions were resolved by add_thread.
                Inst::Split(..)
                | Inst::Jump(..)
                | Inst::Save(..)
                | Inst::AssertStart
                | Inst::AssertEnd => {
                    unreachable!("epsilon instruction in dense thread list")
                }
            }
            i += 1;
        }

        std::mem::swap(&mut clist, &mut nlist);
        nlist.clear();

        if cur_char.is_none() {
            break;
        }
        pos = next_pos;
        current = chars.next();
        if clist.dense.is_empty() && matched.is_some() {
            break;
        }
    }

    matched.map(|slots| Rc::try_unwrap(slots).unwrap_or_else(|rc| (*rc).clone()))
}

/// Adds `pc` to `list`, recursively following epsilon transitions.
///
/// `Match` and consuming instructions land in the dense list so that thread
/// priority order is preserved.
fn add_thread(
    program: &Program,
    list: &mut ThreadList,
    pc: u32,
    pos: usize,
    text_len: usize,
    slots: Slots,
) {
    if !list.seen.insert(pc) {
        return;
    }
    match &program.insts[pc as usize] {
        Inst::Jump(to) => add_thread(program, list, *to, pos, text_len, slots),
        Inst::Split(a, b) => {
            add_thread(program, list, *a, pos, text_len, slots.clone());
            add_thread(program, list, *b, pos, text_len, slots);
        }
        Inst::Save(slot) => {
            let mut new = slots.as_ref().clone();
            new[*slot as usize] = Some(pos);
            add_thread(program, list, pc + 1, pos, text_len, Rc::new(new));
        }
        Inst::AssertStart => {
            if pos == 0 {
                add_thread(program, list, pc + 1, pos, text_len, slots);
            }
        }
        Inst::AssertEnd => {
            if pos == text_len {
                add_thread(program, list, pc + 1, pos, text_len, slots);
            }
        }
        Inst::Ranges(..) | Inst::Any | Inst::Match => {
            list.dense.push((pc, slots));
        }
    }
}

fn ranges_contain(ranges: &[(char, char)], c: char) -> bool {
    // Rule classes are tiny (1–4 ranges); linear scan beats binary search.
    if ranges.len() <= 4 {
        return ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
    }
    ranges
        .binary_search_by(|&(lo, hi)| {
            if c < lo {
                std::cmp::Ordering::Greater
            } else if c > hi {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        })
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::{compile, CompileOptions};
    use crate::parser::parse;

    fn run(pattern: &str, text: &str) -> Option<(usize, usize)> {
        let program = compile(&parse(pattern).unwrap(), CompileOptions::default()).unwrap();
        exec(&program, text, 0, false).map(|s| (s[0].unwrap(), s[1].unwrap()))
    }

    #[test]
    fn literal_search_finds_leftmost() {
        assert_eq!(run("ring", "wedding ring set"), Some((8, 12)));
    }

    #[test]
    fn no_match() {
        assert_eq!(run("ring", "necklace"), None);
    }

    #[test]
    fn greedy_star_takes_longest() {
        assert_eq!(run("a*", "aaab"), Some((0, 3)));
    }

    #[test]
    fn lazy_star_takes_shortest() {
        assert_eq!(run("a*?", "aaab"), Some((0, 0)));
    }

    #[test]
    fn leftmost_beats_longer_later() {
        assert_eq!(run("a+|bbbb", "aabbbb"), Some((0, 2)));
    }

    #[test]
    fn alternation_prefers_first_arm() {
        // leftmost-first: at the same start, the first arm wins.
        assert_eq!(run("ab|abc", "abc"), Some((0, 2)));
        assert_eq!(run("abc|ab", "abc"), Some((0, 3)));
    }

    #[test]
    fn anchored_start() {
        assert_eq!(run("^ring", "ring first"), Some((0, 4)));
        assert_eq!(run("^ring", "a ring"), None);
    }

    #[test]
    fn anchored_end() {
        assert_eq!(run("ring$", "wedding ring"), Some((8, 12)));
        assert_eq!(run("ring$", "ring size"), None);
    }

    #[test]
    fn empty_pattern_matches_empty_prefix() {
        assert_eq!(run("", "abc"), Some((0, 0)));
        assert_eq!(run("", ""), Some((0, 0)));
    }

    #[test]
    fn dot_does_not_match_newline() {
        assert_eq!(run("a.b", "a\nb"), None);
        assert_eq!(run("a.b", "axb"), Some((0, 3)));
    }

    #[test]
    fn captures_recorded() {
        let program = compile(&parse(r"(\w+) oils?").unwrap(), CompileOptions::default()).unwrap();
        let slots = exec(&program, "synthetic motor oil 5qt", 0, false).unwrap();
        // Group 0: whole match. Group 1: the word before " oil".
        let g1 = (slots[2].unwrap(), slots[3].unwrap());
        assert_eq!(&"synthetic motor oil 5qt"[g1.0..g1.1], "motor");
    }

    #[test]
    fn unicode_text_offsets_are_bytes() {
        assert_eq!(run("b", "héllo b"), Some((7, 8)));
    }

    #[test]
    fn paper_rule_rings_matches_titles() {
        for title in [
            "Always & Forever Platinaire Diamond Accent Ring".to_lowercase(),
            "1/4 Carat T.W. Diamond Semi-Eternity Ring in 10kt White Gold".to_lowercase(),
        ] {
            assert!(run("rings?", &title).is_some(), "{title}");
        }
    }

    #[test]
    fn earliest_mode_reports_match() {
        let program = compile(&parse("a+").unwrap(), CompileOptions::default()).unwrap();
        assert!(exec(&program, "baaa", 0, true).is_some());
        assert!(exec(&program, "bbbb", 0, true).is_none());
    }

    #[test]
    fn start_offset_respected() {
        let program = compile(&parse("^b").unwrap(), CompileOptions::default()).unwrap();
        // ^ refers to the absolute start of text, so searching from offset 1
        // must not match.
        assert!(exec(&program, "ab", 1, false).is_none());
        let program = compile(&parse("b").unwrap(), CompileOptions::default()).unwrap();
        let slots = exec(&program, "bab", 1, false).unwrap();
        assert_eq!(slots[0], Some(2));
    }

    #[test]
    fn counted_repetition_matches() {
        assert_eq!(run("a{2,3}", "aaaa"), Some((0, 3)));
        assert_eq!(run("a{2,3}", "a"), None);
        assert_eq!(run("(?:ab){2}", "ababab"), Some((0, 4)));
    }

    #[test]
    fn nested_groups_capture_correctly() {
        let program = compile(&parse("(a(b)c)d").unwrap(), CompileOptions::default()).unwrap();
        let slots = exec(&program, "xabcd", 0, false).unwrap();
        assert_eq!((slots[2], slots[3]), (Some(1), Some(4)));
        assert_eq!((slots[4], slots[5]), (Some(2), Some(3)));
    }

    #[test]
    fn repeated_group_reports_last_iteration() {
        let program = compile(&parse("(?:(a|b))+").unwrap(), CompileOptions::default()).unwrap();
        let slots = exec(&program, "ab", 0, false).unwrap();
        assert_eq!((slots[2], slots[3]), (Some(1), Some(2)));
    }
}
