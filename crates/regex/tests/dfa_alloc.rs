//! Zero-allocation guard for the lazy DFA's steady state.
//!
//! The confirmation tier's speed claim rests on warm searches being pure
//! table walks: once the states a workload touches are cached, `is_match`
//! must not allocate — not for thread lists (the Pike VM's cost), not for
//! state keys, not per call. This test warms a set of rule-shaped patterns
//! on representative titles, then counts heap allocations across thousands
//! of repeat searches. Any future change that sneaks a per-search
//! allocation into the DFA path (or silently diverts these patterns to the
//! Pike VM) fails here, not in a profile.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use rulekit_regex::Regex;

thread_local! {
    /// `Some(n)` while counting on this thread; thread-local so the test
    /// harness's own allocations never pollute the count.
    static ALLOCS: Cell<Option<u64>> = const { Cell::new(None) };
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| {
            if let Some(n) = c.get() {
                c.set(Some(n + 1));
            }
        });
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| {
            if let Some(n) = c.get() {
                c.set(Some(n + 1));
            }
        });
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| {
            if let Some(n) = c.get() {
                c.set(Some(n + 1));
            }
        });
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting enabled and returns how many heap
/// allocations it performed on this thread.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.with(|c| c.set(Some(0)));
    f();
    ALLOCS.with(|c| c.replace(None)).expect("counter armed")
}

#[test]
fn warm_dfa_searches_are_allocation_free() {
    // Rule-shaped patterns: the qualifier.*head idiom, alternation groups,
    // optional plurals, a dictionary-ish disjunction, and anchors.
    let patterns = [
        "denim.*jeans?",
        "(motor|engine) oils?",
        "abrasive.*(wheels?|discs?)",
        "^wedding bands?$",
        "(gold|silver|platinum) ring",
    ];
    let regexes: Vec<Regex> =
        patterns.iter().map(|p| Regex::case_insensitive(p).expect(p)).collect();

    // Mostly non-matching titles so every search scans to the end — the
    // worst (and common) case for a confirmation tier: candidate admitted
    // by a literal hit, rejected by the full pattern.
    let titles = [
        "mens denim jacket distressed",
        "synthetic motor oil 5w-30",
        "angle grinder abrasive flap sanding",
        "wedding bands",
        "sterling silver earrings with gold accents",
        "braided area rug 5x7 indoor outdoor",
    ];

    // Warm: populate every DFA state this workload can touch, and let each
    // regex's cache pool settle (first search may allocate its cache).
    for re in &regexes {
        for t in &titles {
            std::hint::black_box(re.is_match(t));
        }
        assert!(
            re.try_match_dfa(titles[0]).is_some(),
            "pattern {:?} fell off the DFA path; the guard would test the wrong engine",
            re.pattern()
        );
    }

    let n = count_allocs(|| {
        for _ in 0..2_000 {
            for re in &regexes {
                for t in &titles {
                    std::hint::black_box(re.is_match(std::hint::black_box(t)));
                }
            }
        }
    });
    assert_eq!(n, 0, "warm DFA searches allocated {n} times in steady state");
}
