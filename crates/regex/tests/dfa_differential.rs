//! Differential suite for the lazy-DFA confirmation tier: on every input
//! the DFA either returns exactly the Pike VM's verdict or declines
//! (`None`) and the engine falls back — it must never *disagree*.
//!
//! `Regex::find` never routes through the DFA (span extraction is the Pike
//! VM's job), so `find(text).is_some()` is an independent oracle for the
//! same compiled program. The generators deliberately cover the DFA's hard
//! cases: anchors at both ends, non-ASCII characters (multi-byte classes
//! and equivalence-class boundaries), empty patterns/texts, and nested
//! repetition that blows up determinization state counts.

use proptest::prelude::*;
use rulekit_regex::ast::{Ast, ClassSet};
use rulekit_regex::{Options, Regex};

/// Random AST over a small alphabet salted with non-ASCII, rendered to a
/// pattern via `Display` (the same contract the Pike VM property suite
/// uses).
fn arb_ast() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        prop::sample::select(vec!['a', 'b', 'c', ' ', 'é', 'ß']).prop_map(Ast::Literal),
        Just(Ast::AnyChar),
        Just(Ast::Class(ClassSet { ranges: vec![('a', 'c')], negated: false })),
        Just(Ast::Class(ClassSet { ranges: vec![('b', 'c')], negated: true })),
        Just(Ast::Class(ClassSet { ranges: vec![('a', 'b'), ('é', 'é')], negated: false })),
        Just(Ast::StartAnchor),
        Just(Ast::EndAnchor),
        Just(Ast::Empty),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Ast::concat),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Ast::alternate),
            (inner.clone(), 0u32..3, 0u32..3, any::<bool>()).prop_map(|(a, min, extra, greedy)| {
                Ast::Repeat { inner: Box::new(a), min, max: Some(min + extra), greedy }
            }),
            (inner.clone(), any::<bool>()).prop_map(|(a, greedy)| Ast::Repeat {
                inner: Box::new(a),
                min: 0,
                max: None,
                greedy,
            }),
            inner.prop_map(|a| Ast::Group { index: Some(1), inner: Box::new(a) }),
        ]
    })
}

fn arb_text() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::sample::select(vec!['a', 'b', 'c', 'd', ' ', 'é', 'ß', '☃', '\n']),
        0..16,
    )
    .prop_map(|v| v.into_iter().collect())
}

/// Asserts the three-way agreement for one compiled regex and text.
fn check(re: &Regex, text: &str) -> Result<(), TestCaseError> {
    let vm = re.find(text).is_some();
    if let Some(dfa) = re.try_match_dfa(text) {
        prop_assert_eq!(
            dfa,
            vm,
            "DFA disagrees with Pike VM: pattern={:?} text={:?}",
            re.pattern(),
            text
        );
    }
    // The public entry point routes through the DFA and must land on the
    // same verdict regardless of which engine answered.
    prop_assert_eq!(
        re.is_match(text),
        vm,
        "is_match diverged: pattern={:?} text={:?}",
        re.pattern(),
        text
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// DFA ≡ Pike VM on arbitrary generated patterns and texts.
    #[test]
    fn dfa_agrees_with_pikevm(ast in arb_ast(), text in arb_text()) {
        let pattern = ast.to_string();
        let re = Regex::new(&pattern).unwrap_or_else(|e| {
            panic!("display produced unparseable pattern {pattern:?}: {e:?}")
        });
        check(&re, &text)?;
    }

    /// Same agreement under case-insensitive compilation (the mode every
    /// title rule uses), which doubles literal classes and exercises
    /// equivalence-class splitting.
    #[test]
    fn dfa_agrees_case_insensitive(ast in arb_ast(), text in arb_text(), upper in any::<bool>()) {
        let pattern = ast.to_string();
        let re = Regex::case_insensitive(&pattern).unwrap();
        let text = if upper { text.to_uppercase() } else { text };
        check(&re, &text)?;
    }

    /// Explicitly anchored patterns: `^…$`, `^…`, and `…$` shapes resolve
    /// assertions in the DFA's start-state closure and EOI handling.
    #[test]
    fn dfa_agrees_on_anchored_shapes(
        ast in arb_ast(),
        text in arb_text(),
        head in any::<bool>(),
        tail in any::<bool>(),
    ) {
        let mut pattern = ast.to_string();
        if head {
            pattern = format!("^{pattern}");
        }
        if tail {
            pattern = format!("{pattern}$");
        }
        let Ok(re) = Regex::with_options(&pattern, Options::default()) else {
            return Ok(()); // ^/$ injection can produce shapes Display never emits
        };
        check(&re, &text)?;
    }
}

/// Deterministic adversarial sweep: patterns chosen to thrash the bounded
/// state cache (exponential determinization) against aperiodic
/// pseudo-random texts, including non-ASCII. Correctness must survive
/// eviction, fallback, and the hostile-pattern disable switch.
#[test]
fn adversarial_patterns_agree_on_aperiodic_texts() {
    let patterns = [
        "[ab]*a[ab][ab][ab][ab][ab][ab][ab][ab]$",
        "(a|ab)*c",
        "(?:a*b*)*c",
        "[^x]*éß[^x]*",
        "^(a|b|ab)*$",
        "(ab|ba)*(a|b)?$",
    ];
    let alphabet = ['a', 'b', 'c', 'x', 'é', 'ß'];
    for pattern in patterns {
        let re = Regex::new(pattern).expect(pattern);
        let mut state = 0x2545f4914f6cdd1du64;
        for round in 0..48 {
            let len = (round * 7) % 200;
            let text: String = (0..len)
                .map(|_| {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    alphabet[(state >> 33) as usize % alphabet.len()]
                })
                .collect();
            let vm = re.find(&text).is_some();
            if let Some(dfa) = re.try_match_dfa(&text) {
                assert_eq!(dfa, vm, "pattern={pattern:?} text={text:?}");
            }
            assert_eq!(re.is_match(&text), vm, "pattern={pattern:?} text={text:?}");
        }
    }
}
