//! Property-based tests for the regex engine.
//!
//! The central oracle is a naive backtracking matcher defined here over the
//! same AST; the Pike VM must agree with it on `is_match` for arbitrary
//! generated patterns and texts. Further properties pin down literal-CNF
//! soundness, containment soundness, and `find_iter` invariants.

use proptest::prelude::*;
use rulekit_regex::ast::{Ast, ClassSet};
use rulekit_regex::{escape, literal_cnf, Containment, Regex};
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Oracle: naive backtracking matcher.
// ---------------------------------------------------------------------------

/// All end positions (char indices) of matches of `ast` starting at `pos`.
fn match_ends(ast: &Ast, text: &[char], pos: usize) -> BTreeSet<usize> {
    match ast {
        Ast::Empty => [pos].into(),
        Ast::Literal(c) => {
            if text.get(pos) == Some(c) {
                [pos + 1].into()
            } else {
                BTreeSet::new()
            }
        }
        Ast::AnyChar => {
            if pos < text.len() && text[pos] != '\n' {
                [pos + 1].into()
            } else {
                BTreeSet::new()
            }
        }
        Ast::Class(set) => {
            let mut canon = set.clone();
            canon.canonicalize();
            if pos < text.len() && canon.contains(text[pos]) {
                [pos + 1].into()
            } else {
                BTreeSet::new()
            }
        }
        Ast::StartAnchor => {
            if pos == 0 {
                [pos].into()
            } else {
                BTreeSet::new()
            }
        }
        Ast::EndAnchor => {
            if pos == text.len() {
                [pos].into()
            } else {
                BTreeSet::new()
            }
        }
        Ast::Group { inner, .. } => match_ends(inner, text, pos),
        Ast::Concat(parts) => {
            let mut current: BTreeSet<usize> = [pos].into();
            for part in parts {
                let mut next = BTreeSet::new();
                for &p in &current {
                    next.extend(match_ends(part, text, p));
                }
                if next.is_empty() {
                    return next;
                }
                current = next;
            }
            current
        }
        Ast::Alternate(arms) => {
            let mut out = BTreeSet::new();
            for arm in arms {
                out.extend(match_ends(arm, text, pos));
            }
            out
        }
        Ast::Repeat { inner, min, max, .. } => {
            let mut current: BTreeSet<usize> = [pos].into();
            let mut out = BTreeSet::new();
            let cap = max.map_or(text.len() as u32 + 1, |m| m).max(*min);
            for i in 0..=cap {
                if i >= *min {
                    out.extend(current.iter().copied());
                }
                let mut next = BTreeSet::new();
                for &p in &current {
                    next.extend(match_ends(inner, text, p));
                }
                if next.is_subset(&current)
                    && next.iter().all(|p| current.contains(p))
                    && next == current
                {
                    // Fixed point (empty-width loop): no new positions.
                    if i >= *min {
                        break;
                    }
                }
                if next.is_empty() {
                    if i < *min {
                        return out; // can't reach min; out only has >=min entries
                    }
                    break;
                }
                current = next;
            }
            out
        }
    }
}

fn oracle_is_match(ast: &Ast, text: &str) -> bool {
    let chars: Vec<char> = text.chars().collect();
    (0..=chars.len()).any(|i| !match_ends(ast, &chars, i).is_empty())
}

// ---------------------------------------------------------------------------
// Pattern generator.
// ---------------------------------------------------------------------------

/// Random AST over a tiny alphabet, rendered to a pattern via `Display`.
fn arb_ast() -> impl Strategy<Value = Ast> {
    let leaf = prop_oneof![
        prop::sample::select(vec!['a', 'b', 'c', ' ']).prop_map(Ast::Literal),
        Just(Ast::AnyChar),
        Just(Ast::Class(ClassSet { ranges: vec![('a', 'b')], negated: false })),
        Just(Ast::Class(ClassSet { ranges: vec![('b', 'c')], negated: true })),
        Just(Ast::Empty),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(Ast::concat),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Ast::alternate),
            (inner.clone(), 0u32..3, 0u32..3, any::<bool>()).prop_map(|(a, min, extra, greedy)| {
                Ast::Repeat { inner: Box::new(a), min, max: Some(min + extra), greedy }
            }),
            (inner.clone(), any::<bool>()).prop_map(|(a, greedy)| Ast::Repeat {
                inner: Box::new(a),
                min: 0,
                max: None,
                greedy,
            }),
            inner.prop_map(|a| Ast::Group { index: Some(1), inner: Box::new(a) }),
        ]
    })
}

fn arb_text() -> impl Strategy<Value = String> {
    prop::collection::vec(prop::sample::select(vec!['a', 'b', 'c', 'd', ' ']), 0..12)
        .prop_map(|v| v.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The Pike VM agrees with the backtracking oracle on match existence.
    #[test]
    fn pikevm_agrees_with_oracle(ast in arb_ast(), text in arb_text()) {
        let pattern = ast.to_string();
        // Re-parse: Display output is the contract.
        let Ok(re) = Regex::new(&pattern) else {
            // Display must always produce a parseable pattern.
            panic!("display produced unparseable pattern: {pattern:?}");
        };
        let expected = oracle_is_match(re.ast(), &text);
        prop_assert_eq!(re.is_match(&text), expected, "pattern={:?} text={:?}", pattern, text);
    }

    /// `find` and `is_match` are consistent, and the reported span's text
    /// really is matched by the pattern.
    #[test]
    fn find_consistent_with_is_match(ast in arb_ast(), text in arb_text()) {
        let re = Regex::new(&ast.to_string()).unwrap();
        prop_assert_eq!(re.find(&text).is_some(), re.is_match(&text));
    }

    /// `find_iter` spans are ordered, non-overlapping, and in bounds.
    #[test]
    fn find_iter_spans_are_ordered(ast in arb_ast(), text in arb_text()) {
        let re = Regex::new(&ast.to_string()).unwrap();
        let mut last_end = 0usize;
        let mut last_start = None;
        for m in re.find_iter(&text).take(64) {
            prop_assert!(m.start() <= m.end());
            prop_assert!(m.end() <= text.len());
            if let Some(ls) = last_start {
                prop_assert!(m.start() >= ls);
            }
            prop_assert!(m.start() >= last_end || m.is_empty());
            last_end = m.end();
            last_start = Some(m.start());
        }
    }

    /// Escaped arbitrary strings match themselves, wherever they appear.
    #[test]
    fn escaped_literal_matches_itself(s in "[a-z .*?(){}\\[\\]|+^$\\\\]{0,10}", prefix in "[a-z ]{0,5}") {
        let re = Regex::new(&escape(&s)).unwrap();
        let hay = format!("{prefix}{s}");
        prop_assert!(re.is_match(&hay));
        if !s.is_empty() {
            let m = re.find(&hay).unwrap();
            prop_assert_eq!(m.as_str(), &s);
        }
    }

    /// Literal-CNF soundness: every match implies each disjunction is
    /// witnessed by a substring.
    #[test]
    fn literal_cnf_is_sound(ast in arb_ast(), text in arb_text()) {
        let re = Regex::case_insensitive(&ast.to_string()).unwrap();
        if re.is_match(&text) {
            let lowered = text.to_lowercase();
            for disjunction in literal_cnf(re.ast(), true) {
                prop_assert!(
                    disjunction.iter().any(|lit| lowered.contains(lit.as_str())),
                    "pattern {:?} matched {:?} but requirement {:?} unwitnessed",
                    re.pattern(), text, disjunction
                );
            }
        }
    }

    /// Containment soundness: a `Subset` verdict is never contradicted by a
    /// concrete text matched by `a` but not `b`.
    #[test]
    fn containment_is_sound(a in arb_ast(), b in arb_ast(), text in arb_text()) {
        let ra = Regex::new(&a.to_string()).unwrap();
        let rb = Regex::new(&b.to_string()).unwrap();
        if ra.subsumed_by(&rb) == Containment::Subset && ra.is_match(&text) {
            prop_assert!(rb.is_match(&text), "a={:?} b={:?} text={:?}", ra.pattern(), rb.pattern(), text);
        }
    }

    /// NotSubset verdicts are also sound the other way: `Subset` holds
    /// whenever b's touch language is trivially universal (empty pattern).
    #[test]
    fn empty_pattern_subsumes_all(a in arb_ast()) {
        let ra = Regex::new(&a.to_string()).unwrap();
        let rb = Regex::new("").unwrap();
        prop_assert_eq!(ra.subsumed_by(&rb), Containment::Subset);
    }

    /// Case-insensitive matching equals matching the lowercased text with a
    /// lowercased (ASCII) pattern, for plain literal patterns.
    #[test]
    fn case_insensitive_equals_lowered(s in "[a-zA-Z ]{1,8}", text in "[a-zA-Z ]{0,16}") {
        let ci = Regex::case_insensitive(&escape(&s)).unwrap();
        let lowered = Regex::new(&escape(&s.to_lowercase())).unwrap();
        prop_assert_eq!(ci.is_match(&text), lowered.is_match(&text.to_lowercase()));
    }
}
