//! One replication node as a process, for multi-process tests and demos.
//!
//! ```text
//! repl_node leader   --dir DIR [--http ADDR] [--repl ADDR]
//! repl_node follower --dir DIR --leader ADDR [--http ADDR]
//! ```
//!
//! Prints `HTTP <addr>`, (leader) `REPL <addr>`, then `READY` on stdout and
//! serves until stdin reaches EOF — so a parent process shuts a node down
//! gracefully by closing the child's stdin, or simulates a crash by
//! killing it.

use rulekit_repl::{FollowerConfig, FollowerNode, LeaderConfig, LeaderNode, NodeConfig};
use rulekit_store::{FileStorage, Storage};
use std::io::{BufRead, Write};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: repl_node leader   --dir DIR [--http ADDR] [--repl ADDR]\n\
         \x20      repl_node follower --dir DIR --leader ADDR [--http ADDR]"
    );
    std::process::exit(2);
}

struct Args {
    role: String,
    dir: Option<String>,
    http: String,
    repl: String,
    leader: Option<String>,
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let Some(role) = argv.next() else { usage() };
    let mut args = Args {
        role,
        dir: None,
        http: "127.0.0.1:0".to_string(),
        repl: "127.0.0.1:0".to_string(),
        leader: None,
    };
    while let Some(flag) = argv.next() {
        let Some(value) = argv.next() else { usage() };
        match flag.as_str() {
            "--dir" => args.dir = Some(value),
            "--http" => args.http = value,
            "--repl" => args.repl = value,
            "--leader" => args.leader = Some(value),
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let Some(dir) = args.dir.clone() else { usage() };
    let storage: Arc<dyn Storage> = match FileStorage::open(&dir) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("repl_node: cannot open storage dir {dir}: {e}");
            std::process::exit(1);
        }
    };
    let mut cfg = NodeConfig::default();
    cfg.net.addr = args.http.clone();
    // Keep the serving tier small and snappy: these nodes exist to observe
    // replication, not to saturate CPUs.
    cfg.serve.shards = 2;
    cfg.serve.refresh_interval = Duration::from_millis(10);

    let stdout = std::io::stdout();
    match args.role.as_str() {
        "leader" => {
            let leader_cfg = LeaderConfig { addr: args.repl.clone(), ..Default::default() };
            let node = match LeaderNode::start(storage, cfg, leader_cfg) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("repl_node: leader start failed: {e}");
                    std::process::exit(1);
                }
            };
            {
                let mut out = stdout.lock();
                writeln!(out, "HTTP {}", node.http_addr()).ok();
                writeln!(out, "REPL {}", node.repl_addr()).ok();
                writeln!(out, "READY").ok();
                out.flush().ok();
            }
            wait_for_stdin_eof();
            drop(node);
        }
        "follower" => {
            let Some(leader) = args.leader.clone() else { usage() };
            let leader_addr: SocketAddr = match leader.parse() {
                Ok(a) => a,
                Err(_) => {
                    eprintln!("repl_node: bad --leader address {leader}");
                    std::process::exit(1);
                }
            };
            let mut follower_cfg = FollowerConfig::new(leader_addr);
            // Fast reconnect for interactive/test usage.
            follower_cfg.backoff_base = Duration::from_millis(25);
            follower_cfg.backoff_cap = Duration::from_millis(500);
            let node = match FollowerNode::start(storage, cfg, follower_cfg) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("repl_node: follower start failed: {e}");
                    std::process::exit(1);
                }
            };
            {
                let mut out = stdout.lock();
                writeln!(out, "HTTP {}", node.http_addr()).ok();
                writeln!(out, "READY").ok();
                out.flush().ok();
            }
            wait_for_stdin_eof();
            drop(node);
        }
        _ => usage(),
    }
}

/// Blocks until the parent closes our stdin (graceful shutdown signal).
fn wait_for_stdin_eof() {
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    while let Some(Ok(_)) = lines.next() {}
}
