//! The replication follower: a background thread that keeps one session to
//! the leader alive, replays shipped records into its *own*
//! [`DurableRepository`] (log-then-apply, so replicated edits survive the
//! follower's own crashes), and installs full snapshots when it is too far
//! behind to tail.
//!
//! ## State machine
//!
//! ```text
//!          connect + Hello        caught up (heard leader, no lag)
//! Syncing ────────────────▶ ... ─────────────────────────▶ Tailing
//!    ▲                                                        │
//!    │ reconnect + handshake        deadline missed / EOF /   │
//!    └──────────────────── Stale ◀── torn frame / gap ────────┘
//! ```
//!
//! * **Syncing** — a session is being established or the follower is
//!   behind the last sequence the leader advertised;
//! * **Tailing** — live at the head of the log (the healthy steady state);
//! * **Stale** — no live session: the heartbeat deadline passed, the
//!   connection dropped, or the stream corrupted. Classification keeps
//!   serving the last applied snapshot — staleness is explicit, visible in
//!   `/health`, and bounded by reconnect backoff.
//!
//! ## Failure handling
//!
//! Reconnects use deterministic jittered exponential backoff. A revision
//! *gap* or id mismatch from [`DurableRepository::apply_replicated`] means
//! this follower's log diverged from what the leader ships (e.g. the
//! leader lost an unsynced tail in a crash); the follower reconnects with
//! `force_snapshot` and rebuilds from the leader's image — it never
//! guesses. Duplicate records after a resume are skipped by revision, so
//! replay is idempotent across any partition pattern.

use crate::now_nanos;
use crate::proto::{self, Frame};
use rulekit_net::backoff::Backoff;
use rulekit_net::ReplicationInfo;
use rulekit_obs::{Counter, Gauge, Histogram, Registry};
use rulekit_store::{DurableRepository, ReplayOutcome, StoreError};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Follower tuning.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// The leader's replication address.
    pub leader_addr: SocketAddr,
    /// No frame (record *or* heartbeat) within this window ⇒ the leader is
    /// presumed dead: state drops to Stale and the session reconnects.
    /// Must comfortably exceed the leader's heartbeat interval.
    pub heartbeat_deadline: Duration,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// First rung of the reconnect backoff.
    pub backoff_base: Duration,
    /// Reconnect backoff ceiling.
    pub backoff_cap: Duration,
    /// Jitter seed (deterministic reconnect schedules in tests).
    pub seed: u64,
}

impl FollowerConfig {
    /// Defaults for everything but the leader address.
    pub fn new(leader_addr: SocketAddr) -> FollowerConfig {
        FollowerConfig {
            leader_addr,
            heartbeat_deadline: Duration::from_secs(1),
            connect_timeout: Duration::from_secs(1),
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            seed: 0xf011_0e5e,
        }
    }
}

/// The follower's position in the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FollowerState {
    /// Establishing a session or replaying toward the leader's head.
    Syncing,
    /// Live at the head of the leader's log.
    Tailing,
    /// No live session; serving the last applied state.
    Stale,
}

impl FollowerState {
    /// Lower-case name (`/health` and metrics).
    pub fn as_str(self) -> &'static str {
        match self {
            FollowerState::Syncing => "syncing",
            FollowerState::Tailing => "tailing",
            FollowerState::Stale => "stale",
        }
    }

    fn code(self) -> u8 {
        match self {
            FollowerState::Syncing => 0,
            FollowerState::Tailing => 1,
            FollowerState::Stale => 2,
        }
    }

    fn from_code(code: u8) -> FollowerState {
        match code {
            0 => FollowerState::Syncing,
            1 => FollowerState::Tailing,
            _ => FollowerState::Stale,
        }
    }
}

struct FollowerMetrics {
    last_applied: Gauge,
    leader_seq_seen: Gauge,
    seq_delta: Gauge,
    state: Gauge,
    records_applied: Counter,
    records_skipped: Counter,
    snapshots_installed: Counter,
    reconnects: Counter,
    divergences: Counter,
    edit_visibility_lag: Histogram,
}

impl FollowerMetrics {
    fn new(registry: &Registry) -> FollowerMetrics {
        FollowerMetrics {
            last_applied: registry.gauge("rulekit_repl_last_applied_seq"),
            leader_seq_seen: registry.gauge("rulekit_repl_leader_seq_seen"),
            seq_delta: registry.gauge("rulekit_repl_seq_delta"),
            state: registry.gauge("rulekit_repl_follower_state"),
            records_applied: registry.counter("rulekit_repl_records_applied_total"),
            records_skipped: registry.counter("rulekit_repl_records_skipped_total"),
            snapshots_installed: registry.counter("rulekit_repl_snapshots_installed_total"),
            reconnects: registry.counter("rulekit_repl_reconnects_total"),
            divergences: registry.counter("rulekit_repl_divergences_total"),
            edit_visibility_lag: registry.histogram("rulekit_repl_edit_visibility_lag_nanos"),
        }
    }
}

struct FollowerShared {
    store: Arc<DurableRepository>,
    cfg: FollowerConfig,
    state: AtomicU8,
    last_applied: AtomicU64,
    leader_seq_seen: AtomicU64,
    /// Leader incarnation this follower's state was last grounded under
    /// (persisted; 0 = unknown). Sent in Hello so a restarted leader — same
    /// revisions, different history — forces a snapshot instead of silently
    /// letting the follower tail a fork.
    epoch: AtomicU64,
    shutdown: AtomicBool,
    metrics: FollowerMetrics,
}

impl FollowerShared {
    fn set_state(&self, s: FollowerState) {
        self.state.store(s.code(), Ordering::Release);
        self.metrics.state.set(s.code() as i64);
    }

    fn state(&self) -> FollowerState {
        FollowerState::from_code(self.state.load(Ordering::Acquire))
    }

    /// Refreshes position gauges and resolves Syncing/Tailing from lag.
    /// `heard` is whether this session has received any post-handshake
    /// frame yet — without one the leader's head is unknown and the
    /// follower cannot claim to be tailing.
    fn note_progress(&self, heard: bool) {
        let applied = self.store.repository().revision();
        self.last_applied.store(applied, Ordering::Release);
        let seen = self.leader_seq_seen.load(Ordering::Acquire).max(applied);
        self.leader_seq_seen.store(seen, Ordering::Release);
        self.metrics.last_applied.set(applied as i64);
        self.metrics.leader_seq_seen.set(seen as i64);
        self.metrics.seq_delta.set(seen.saturating_sub(applied) as i64);
        if self.state() != FollowerState::Stale || heard {
            // A Stale follower only leaves Stale through a live session
            // (heard = true); a live one flips between Syncing/Tailing
            // with lag.
            if heard && seen <= applied {
                self.set_state(FollowerState::Tailing);
            } else if !heard || seen > applied {
                self.set_state(FollowerState::Syncing);
            }
        }
    }
}

/// A running follower. Dropping it stops the replication thread; the
/// store keeps serving whatever was last applied.
pub struct ReplFollower {
    shared: Arc<FollowerShared>,
    thread: Option<JoinHandle<()>>,
}

impl ReplFollower {
    /// Starts the replication thread (connecting happens there — a dead
    /// leader at start just means backoff-retry, not a start failure).
    pub fn start(
        store: Arc<DurableRepository>,
        cfg: FollowerConfig,
        registry: &Registry,
    ) -> ReplFollower {
        let metrics = FollowerMetrics::new(registry);
        let shared = Arc::new(FollowerShared {
            last_applied: AtomicU64::new(store.repository().revision()),
            leader_seq_seen: AtomicU64::new(0),
            epoch: AtomicU64::new(store.load_epoch()),
            store,
            cfg,
            state: AtomicU8::new(FollowerState::Syncing.code()),
            shutdown: AtomicBool::new(false),
            metrics,
        });
        shared.note_progress(false);
        let thread = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("rulekit-repl-follower".into())
                .spawn(move || follower_loop(&shared))
                .expect("spawn repl follower")
        };
        ReplFollower { shared, thread: Some(thread) }
    }

    /// Current state.
    pub fn state(&self) -> FollowerState {
        self.shared.state()
    }

    /// Highest locally applied revision.
    pub fn last_applied(&self) -> u64 {
        self.shared.last_applied.load(Ordering::Acquire)
    }

    /// Highest leader revision heard (0 before first contact).
    pub fn leader_seq_seen(&self) -> u64 {
        self.shared.leader_seq_seen.load(Ordering::Acquire)
    }

    /// The `/health` surface for this role.
    pub fn info(&self) -> Arc<dyn ReplicationInfo> {
        Arc::new(FollowerInfo { shared: self.shared.clone() })
    }

    /// Blocks until the follower reaches `state` or the timeout passes.
    pub fn wait_for_state(&self, state: FollowerState, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while std::time::Instant::now() < deadline {
            if self.state() == state {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.state() == state
    }

    /// Stops the replication thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReplFollower {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct FollowerInfo {
    shared: Arc<FollowerShared>,
}

impl ReplicationInfo for FollowerInfo {
    fn role(&self) -> &'static str {
        "follower"
    }

    fn state(&self) -> &'static str {
        self.shared.state().as_str()
    }

    fn last_applied(&self) -> u64 {
        self.shared.last_applied.load(Ordering::Acquire)
    }

    fn leader_seq(&self) -> u64 {
        self.shared.leader_seq_seen.load(Ordering::Acquire)
    }

    fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }
}

/// How a session ended (drives the next Hello).
enum SessionEnd {
    /// Transport-level end: reconnect and resume from the local revision.
    Disconnect,
    /// Divergence: reconnect demanding a full snapshot.
    NeedSnapshot,
    /// Leader told us nothing yet and we are shutting down.
    Shutdown,
}

fn follower_loop(shared: &Arc<FollowerShared>) {
    let mut backoff =
        Backoff::new(shared.cfg.backoff_base, shared.cfg.backoff_cap, shared.cfg.seed);
    let mut force_snapshot = false;
    let mut ever_connected = false;
    while !shared.shutdown.load(Ordering::Acquire) {
        let stream =
            match TcpStream::connect_timeout(&shared.cfg.leader_addr, shared.cfg.connect_timeout) {
                Ok(s) => s,
                Err(_) => {
                    sleep_interruptible(shared, backoff.next_delay());
                    continue;
                }
            };
        if ever_connected {
            shared.metrics.reconnects.inc();
        }
        ever_connected = true;
        match run_session(shared, stream, force_snapshot, &mut backoff) {
            SessionEnd::Shutdown => return,
            SessionEnd::Disconnect => {
                force_snapshot = false;
                shared.set_state(FollowerState::Stale);
            }
            SessionEnd::NeedSnapshot => {
                force_snapshot = true;
                shared.set_state(FollowerState::Stale);
            }
        }
        sleep_interruptible(shared, backoff.next_delay());
    }
}

/// Backoff sleep that wakes promptly on shutdown.
fn sleep_interruptible(shared: &FollowerShared, total: Duration) {
    let deadline = std::time::Instant::now() + total;
    while std::time::Instant::now() < deadline {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        std::thread::sleep(Duration::from_millis(10).min(total));
    }
}

fn run_session(
    shared: &Arc<FollowerShared>,
    stream: TcpStream,
    force_snapshot: bool,
    backoff: &mut Backoff,
) -> SessionEnd {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(shared.cfg.heartbeat_deadline)).is_err()
        || stream.set_write_timeout(Some(shared.cfg.connect_timeout)).is_err()
    {
        return SessionEnd::Disconnect;
    }
    let mut w = &stream;
    let hello = Frame::Hello {
        last_seq: shared.store.repository().revision(),
        epoch: shared.epoch.load(Ordering::Acquire),
        force_snapshot,
    };
    if proto::write_frame(&mut w, &hello).is_err() {
        return SessionEnd::Disconnect;
    }
    shared.note_progress(false);
    let mut reader = &stream;
    let mut heard = false;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return SessionEnd::Shutdown;
        }
        let frame = match proto::read_frame(&mut reader) {
            Ok(f) => f,
            // Timeout (missed heartbeat deadline), EOF, or a torn/corrupt
            // frame: drop the session. Resume is idempotent, so a record
            // half-received now is simply re-shipped after reconnect.
            Err(_) => return SessionEnd::Disconnect,
        };
        if !heard {
            // Live session established: the reconnect schedule restarts.
            backoff.reset();
            heard = true;
        }
        match frame {
            Frame::Snapshot { ts_nanos, epoch, data } => {
                let revision = data.revision;
                if shared.store.install_snapshot(&data).is_err() {
                    // Local storage trouble; retry the whole catch-up.
                    return SessionEnd::NeedSnapshot;
                }
                // Adopt the leader's epoch only *after* local state matches
                // its image. Persistence is best-effort: a lost epoch reads
                // back as 0, which merely costs one extra snapshot at the
                // next handshake — never a fork.
                let _ = shared.store.save_epoch(epoch);
                shared.epoch.store(epoch, Ordering::Release);
                shared.metrics.snapshots_installed.inc();
                record_lag(shared, ts_nanos);
                // A snapshot *replaces* our view of the leader's head — a
                // restarted leader's head may be lower than anything we
                // heard before, and keeping the old maximum would pin the
                // follower in Syncing forever.
                shared.leader_seq_seen.store(revision, Ordering::Release);
            }
            Frame::Record { ts_nanos, record } => {
                let revision = record.revision;
                match shared.store.apply_replicated(&record) {
                    Ok(ReplayOutcome::Applied) => {
                        shared.metrics.records_applied.inc();
                        record_lag(shared, ts_nanos);
                    }
                    Ok(ReplayOutcome::Skipped) => {
                        shared.metrics.records_skipped.inc();
                    }
                    Err(StoreError::Corrupt(_)) | Err(StoreError::Parse(_)) => {
                        // Gap or divergence: rebuild from the leader's image.
                        shared.metrics.divergences.inc();
                        return SessionEnd::NeedSnapshot;
                    }
                    Err(StoreError::Io(_)) => {
                        // Local WAL append failed (the record was NOT
                        // applied). Reconnect; the leader re-ships from our
                        // acknowledged revision.
                        return SessionEnd::Disconnect;
                    }
                }
                bump_seen(shared, revision);
            }
            Frame::Heartbeat { ts_nanos: _, leader_seq } => {
                bump_seen(shared, leader_seq);
            }
            Frame::Hello { .. } => return SessionEnd::Disconnect, // protocol violation
        }
        shared.note_progress(true);
    }
}

fn bump_seen(shared: &FollowerShared, seq: u64) {
    shared.leader_seq_seen.fetch_max(seq, Ordering::AcqRel);
}

fn record_lag(shared: &FollowerShared, sent_ts_nanos: u64) {
    let lag = now_nanos().saturating_sub(sent_ts_nanos);
    shared.metrics.edit_visibility_lag.record(lag);
}
