//! The replication leader: tails its own durable store (via the store's
//! record sink, so the shipping order *is* the WAL order) and serves one
//! session thread per connected follower.
//!
//! A session starts with the follower's `Hello { last_seq }` and then
//! decides, forever, between three moves:
//!
//! * the shipping ring covers `(last_seq, head]` → stream those records;
//! * it doesn't (cold follower, long partition, or a follower *ahead* of a
//!   restarted leader) → send a full [`CheckpointData`] snapshot from
//!   [`DurableRepository::snapshot_data`] and resume from its revision;
//! * nothing new for a heartbeat interval → send a heartbeat carrying the
//!   head sequence, so followers can measure lag while idle and detect a
//!   dead leader by deadline.
//!
//! Consistency: the sink fires under the store's mutation lock, and
//! `snapshot_data` takes the same lock — a snapshot can never miss a
//! record that the ring also missed. Worst case is overlap (a record both
//! in the snapshot and re-shipped), which follower-side idempotent replay
//! skips by revision.
//!
//! [`CheckpointData`]: rulekit_store::CheckpointData
//! [`DurableRepository::snapshot_data`]: rulekit_store::DurableRepository::snapshot_data

use crate::log::{Coverage, ReplLog};
use crate::now_nanos;
use crate::proto::{self, Frame};
use rulekit_net::ReplicationInfo;
use rulekit_obs::{Counter, Gauge, Registry};
use rulekit_store::DurableRepository;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Leader tuning.
#[derive(Debug, Clone)]
pub struct LeaderConfig {
    /// Bind address for the replication port (0 = ephemeral).
    pub addr: String,
    /// Idle interval between heartbeats; followers treat several missed
    /// intervals as a dead leader.
    pub heartbeat: Duration,
    /// Shipping-ring capacity in records. A follower partitioned for more
    /// records than this catches up by snapshot instead of replay.
    pub ring_capacity: usize,
    /// How long a session waits for the follower's `Hello`.
    pub hello_timeout: Duration,
    /// Per-frame write timeout (bounds how long a dead follower can pin a
    /// session thread).
    pub write_timeout: Duration,
}

impl Default for LeaderConfig {
    fn default() -> Self {
        LeaderConfig {
            addr: "127.0.0.1:0".to_string(),
            heartbeat: Duration::from_millis(200),
            ring_capacity: 4096,
            hello_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }
}

struct LeaderMetrics {
    leader_seq: Gauge,
    followers: Gauge,
    records_shipped: Counter,
    snapshots_served: Counter,
    heartbeats_sent: Counter,
}

impl LeaderMetrics {
    fn new(registry: &Registry) -> LeaderMetrics {
        LeaderMetrics {
            leader_seq: registry.gauge("rulekit_repl_leader_seq"),
            followers: registry.gauge("rulekit_repl_connected_followers"),
            records_shipped: registry.counter("rulekit_repl_records_shipped_total"),
            snapshots_served: registry.counter("rulekit_repl_snapshots_served_total"),
            heartbeats_sent: registry.counter("rulekit_repl_heartbeats_sent_total"),
        }
    }
}

struct LeaderShared {
    store: Arc<DurableRepository>,
    log: Arc<ReplLog>,
    cfg: LeaderConfig,
    /// This leader incarnation (persisted, bumped at every start). Followers
    /// compare it at handshake; a mismatch forces a snapshot because a
    /// restarted leader may hold different history at the same revisions.
    epoch: u64,
    shutdown: AtomicBool,
    metrics: LeaderMetrics,
    sessions: Mutex<Vec<JoinHandle<()>>>,
}

/// A running leader. Dropping it shuts down the replication port and
/// unhooks the store's record sink (the store itself keeps serving).
pub struct ReplLeader {
    shared: Arc<LeaderShared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl ReplLeader {
    /// Binds the replication port, hooks the store's record sink into the
    /// shipping ring, and starts accepting followers.
    pub fn start(
        store: Arc<DurableRepository>,
        cfg: LeaderConfig,
        registry: &Registry,
    ) -> std::io::Result<ReplLeader> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let epoch = store.bump_epoch().map_err(|e| std::io::Error::other(e.to_string()))?;
        let log = Arc::new(ReplLog::new(cfg.ring_capacity, 0));
        let metrics = LeaderMetrics::new(registry);
        let shared = Arc::new(LeaderShared {
            store: store.clone(),
            log: log.clone(),
            cfg,
            epoch,
            shutdown: AtomicBool::new(false),
            metrics,
            sessions: Mutex::new(Vec::new()),
        });
        {
            let log = log.clone();
            let seq_gauge = shared.metrics.leader_seq.clone();
            store.set_record_sink(Some(Arc::new(move |record| {
                log.publish(record.clone());
                seq_gauge.set(record.revision as i64);
            })));
        }
        // Sink first, *then* fold in the store revision: a mutation racing
        // the hookup either reached the sink (advance_to is then a no-op) or
        // raises the head here so followers see a Gap and snapshot, instead
        // of tailing a stale head. Never read the revision before the sink
        // is live.
        log.advance_to(store.repository().revision());
        shared.metrics.leader_seq.set(log.leader_seq() as i64);
        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("rulekit-repl-accept".into())
                .spawn(move || acceptor_loop(&shared, listener))
                .expect("spawn repl acceptor")
        };
        Ok(ReplLeader { shared, local_addr, acceptor: Some(acceptor) })
    }

    /// The bound replication address (resolves an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Highest acknowledged revision (what heartbeats advertise).
    pub fn leader_seq(&self) -> u64 {
        self.shared.log.leader_seq()
    }

    /// This leader incarnation (bumped and persisted at start).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch
    }

    /// Currently connected follower sessions.
    pub fn connected_followers(&self) -> i64 {
        self.shared.metrics.followers.value()
    }

    /// The `/health` surface for this role.
    pub fn info(&self) -> Arc<dyn ReplicationInfo> {
        Arc::new(LeaderInfo { shared: self.shared.clone() })
    }

    /// Stops accepting, wakes idle sessions, joins every thread, unhooks
    /// the record sink. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.store.set_record_sink(None);
        self.shared.log.close();
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let sessions: Vec<_> =
            self.shared.sessions.lock().unwrap_or_else(|e| e.into_inner()).drain(..).collect();
        for h in sessions {
            let _ = h.join();
        }
    }
}

impl Drop for ReplLeader {
    fn drop(&mut self) {
        self.shutdown();
    }
}

struct LeaderInfo {
    shared: Arc<LeaderShared>,
}

impl ReplicationInfo for LeaderInfo {
    fn role(&self) -> &'static str {
        "leader"
    }

    fn state(&self) -> &'static str {
        "leading"
    }

    fn last_applied(&self) -> u64 {
        self.shared.store.repository().revision()
    }

    fn leader_seq(&self) -> u64 {
        self.shared.log.leader_seq()
    }

    fn epoch(&self) -> u64 {
        self.shared.epoch
    }
}

fn acceptor_loop(shared: &Arc<LeaderShared>, listener: TcpListener) {
    loop {
        let conn = listener.accept();
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match conn {
            Ok((stream, _peer)) => {
                let session_shared = shared.clone();
                let handle = std::thread::Builder::new()
                    .name("rulekit-repl-session".into())
                    .spawn(move || session(&session_shared, stream))
                    .expect("spawn repl session");
                let mut sessions = shared.sessions.lock().unwrap_or_else(|e| e.into_inner());
                // Reap finished sessions so a churn of reconnecting
                // followers doesn't accumulate handles.
                sessions.retain(|h| !h.is_finished());
                sessions.push(handle);
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// One follower's session: handshake, then stream snapshots / records /
/// heartbeats until the connection dies or the leader shuts down. All I/O
/// errors just end the session — the follower reconnects and resumes.
fn session(shared: &LeaderShared, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    if stream.set_read_timeout(Some(shared.cfg.hello_timeout)).is_err()
        || stream.set_write_timeout(Some(shared.cfg.write_timeout)).is_err()
    {
        return;
    }
    let mut reader = &stream;
    let Ok(Frame::Hello { last_seq, epoch, force_snapshot }) = proto::read_frame(&mut reader)
    else {
        return;
    };
    // A follower fed by a different leader incarnation (or by none — epoch
    // 0) may hold divergent history at revisions the ring would happily
    // skip past; only a snapshot re-grounds it.
    let need_snapshot = force_snapshot || epoch != shared.epoch;
    shared.metrics.followers.inc();
    let _ = run_session(shared, &stream, last_seq, need_snapshot);
    shared.metrics.followers.dec();
}

fn run_session(
    shared: &LeaderShared,
    stream: &TcpStream,
    last_seq: u64,
    force_snapshot: bool,
) -> std::io::Result<()> {
    let mut w = stream;
    let mut cursor = last_seq;
    if force_snapshot {
        cursor = send_snapshot(shared, &mut w)?;
    }
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return Ok(());
        }
        match shared.log.after(cursor) {
            Coverage::Records(records) => {
                for record in records {
                    let revision = record.revision;
                    proto::write_frame(&mut w, &Frame::Record { ts_nanos: now_nanos(), record })?;
                    shared.metrics.records_shipped.inc();
                    cursor = revision;
                }
            }
            Coverage::Gap => {
                cursor = send_snapshot(shared, &mut w)?;
            }
            Coverage::UpToDate => {
                if !shared.log.wait_newer(cursor, shared.cfg.heartbeat) {
                    if shared.shutdown.load(Ordering::Acquire) {
                        return Ok(());
                    }
                    proto::write_frame(
                        &mut w,
                        &Frame::Heartbeat {
                            ts_nanos: now_nanos(),
                            leader_seq: shared.log.leader_seq(),
                        },
                    )?;
                    shared.metrics.heartbeats_sent.inc();
                }
            }
        }
    }
}

/// Ships a consistent full-catalog snapshot; returns its revision (the new
/// cursor).
fn send_snapshot(shared: &LeaderShared, w: &mut impl std::io::Write) -> std::io::Result<u64> {
    let data = shared.store.snapshot_data();
    let revision = data.revision;
    proto::write_frame(w, &Frame::Snapshot { ts_nanos: now_nanos(), epoch: shared.epoch, data })?;
    shared.metrics.snapshots_served.inc();
    Ok(revision)
}
