//! rulekit-repl — leader/follower WAL-shipping replication for the rule
//! store, in the spirit of the paper's serving tier: rule *edits* are rare
//! and small, rule *evaluation* is hot, so replicas scale reads while a
//! single leader owns writes.
//!
//! The design in one paragraph: the leader's [`DurableRepository`] already
//! serializes every mutation through its WAL; a record sink hooked under
//! that same mutation lock feeds an in-memory shipping ring
//! ([`log::ReplLog`]), and one session thread per follower streams the ring
//! over CRC-framed TCP ([`proto`]). A follower that is cold, too far
//! behind the ring, or divergent catches up from a full checkpoint
//! snapshot instead, then resumes tailing. Replay is idempotent by
//! revision, so every failure mode — torn frame, partition, crash on
//! either side — reduces to "reconnect and resume (or resync)".
//!
//! Pieces:
//!
//! * [`proto`] — the framed wire protocol (Hello / Snapshot / Record /
//!   Heartbeat);
//! * [`log`] — the leader's bounded shipping ring;
//! * [`leader`] / [`follower`] — the two role loops, with liveness
//!   (heartbeats + deadline), jittered-backoff reconnect, and explicit
//!   follower states (Syncing → Tailing → Stale);
//! * [`node`] — wiring either role together with the HTTP serving tier
//!   (`rulekit-net`), plus the front tier lives in
//!   [`rulekit_net::FrontTier`].
//!
//! [`DurableRepository`]: rulekit_store::DurableRepository

pub mod follower;
pub mod leader;
pub mod log;
pub mod node;
pub mod proto;

pub use follower::{FollowerConfig, FollowerState, ReplFollower};
pub use leader::{LeaderConfig, ReplLeader};
pub use node::{FollowerNode, LeaderNode, NodeConfig};
pub use proto::{Frame, MAX_FRAME, PROTO_VERSION};

/// Wall-clock nanoseconds since the Unix epoch; the timestamp carried by
/// shipped frames so followers can report edit-visibility lag. Clock skew
/// between nodes shifts the measurement, not correctness — replication
/// ordering never depends on it.
pub(crate) fn now_nanos() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}
