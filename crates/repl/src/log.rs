//! The leader's in-memory shipping log: a bounded ring of recently
//! acknowledged WAL records, fed by the store's record sink (under the
//! store's mutation lock, so in exact log order) and drained by one session
//! thread per follower.
//!
//! The ring is deliberately *not* the durability story — the WAL is. It
//! only exists so tailing followers read from memory instead of re-reading
//! the leader's log file. When a follower's cursor falls off the ring's
//! tail (it was partitioned longer than the ring remembers), the session
//! answers with a fresh checkpoint snapshot instead — [`Coverage::Gap`].

use rulekit_store::WalRecord;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// What the ring can offer a follower whose log ends at some cursor.
#[derive(Debug)]
pub enum Coverage {
    /// The cursor is the head of the log — nothing to ship.
    UpToDate,
    /// Every record after the cursor, in order.
    Records(Vec<WalRecord>),
    /// The ring no longer holds (or never held) `cursor + 1`, or the
    /// cursor is *ahead* of this leader (a restarted leader that lost an
    /// unsynced tail). Either way: ship a snapshot.
    Gap,
}

struct Inner {
    entries: VecDeque<WalRecord>,
    /// Highest revision published (the leader's sequence number).
    leader_seq: u64,
    closed: bool,
}

/// Bounded, thread-safe record ring with a change signal.
pub struct ReplLog {
    inner: Mutex<Inner>,
    newer: Condvar,
    capacity: usize,
}

impl ReplLog {
    /// An empty ring whose head starts at `initial_seq` (the repository
    /// revision when the leader started).
    pub fn new(capacity: usize, initial_seq: u64) -> ReplLog {
        ReplLog {
            inner: Mutex::new(Inner {
                entries: VecDeque::with_capacity(capacity.min(1024)),
                leader_seq: initial_seq,
                closed: false,
            }),
            newer: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Publishes one acknowledged record and wakes every waiting session.
    /// Called from the store's record sink.
    pub fn publish(&self, record: WalRecord) {
        let mut inner = self.lock();
        inner.leader_seq = inner.leader_seq.max(record.revision);
        if inner.entries.len() == self.capacity {
            inner.entries.pop_front();
        }
        inner.entries.push_back(record);
        drop(inner);
        self.newer.notify_all();
    }

    /// The highest published revision.
    pub fn leader_seq(&self) -> u64 {
        self.lock().leader_seq
    }

    /// Raises the head to at least `seq` without publishing a record, waking
    /// waiters if it moved. Lets a leader install its record sink *first*
    /// and then fold in the store revision — any mutation racing the hookup
    /// either published through the sink (same seq, idempotent) or is
    /// covered by this call; neither window strands a follower at a stale
    /// head.
    pub fn advance_to(&self, seq: u64) {
        let mut inner = self.lock();
        if seq > inner.leader_seq {
            inner.leader_seq = seq;
            drop(inner);
            self.newer.notify_all();
        }
    }

    /// Everything after `cursor`, or why that's not possible.
    pub fn after(&self, cursor: u64) -> Coverage {
        let inner = self.lock();
        if cursor > inner.leader_seq {
            return Coverage::Gap;
        }
        if cursor == inner.leader_seq {
            return Coverage::UpToDate;
        }
        // The ring covers (cursor, leader_seq] only if its oldest entry is
        // at or below cursor + 1.
        match inner.entries.front() {
            Some(front) if front.revision <= cursor + 1 => Coverage::Records(
                inner.entries.iter().filter(|r| r.revision > cursor).cloned().collect(),
            ),
            _ => Coverage::Gap,
        }
    }

    /// Blocks until a revision newer than `cursor` is published, the log
    /// closes, or `timeout` passes. Returns `true` when something newer is
    /// available.
    pub fn wait_newer(&self, cursor: u64, timeout: Duration) -> bool {
        let mut inner = self.lock();
        let deadline = std::time::Instant::now() + timeout;
        while inner.leader_seq <= cursor && !inner.closed {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timed_out) =
                self.newer.wait_timeout(inner, deadline - now).unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
        inner.leader_seq > cursor
    }

    /// Wakes every waiter permanently (leader shutdown).
    pub fn close(&self) {
        self.lock().closed = true;
        self.newer.notify_all();
    }

    /// Whether [`ReplLog::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulekit_store::WalOp;

    fn rec(revision: u64) -> WalRecord {
        WalRecord { revision, op: WalOp::Enable { id: 1 } }
    }

    #[test]
    fn covers_tail_and_reports_gaps() {
        let log = ReplLog::new(4, 0);
        assert!(matches!(log.after(0), Coverage::UpToDate));
        for r in 1..=6 {
            log.publish(rec(r));
        }
        // Capacity 4: ring holds 3..=6; cursor 2 is coverable, cursor 1 not.
        match log.after(2) {
            Coverage::Records(rs) => {
                assert_eq!(rs.iter().map(|r| r.revision).collect::<Vec<_>>(), vec![3, 4, 5, 6]);
            }
            other => panic!("expected records, got {other:?}"),
        }
        assert!(matches!(log.after(1), Coverage::Gap));
        assert!(matches!(log.after(6), Coverage::UpToDate));
        assert!(matches!(log.after(9), Coverage::Gap), "cursor ahead of leader = gap");
    }

    #[test]
    fn advance_to_raises_head_and_gaps_missed_records() {
        let log = ReplLog::new(4, 0);
        log.advance_to(3);
        assert_eq!(log.leader_seq(), 3);
        // Revisions 1..=3 were never published (pre-sink mutations): a
        // follower behind the head must get a snapshot, not UpToDate.
        assert!(matches!(log.after(1), Coverage::Gap));
        assert!(matches!(log.after(3), Coverage::UpToDate));
        // Never moves backwards, and a racing publish is idempotent.
        log.advance_to(2);
        assert_eq!(log.leader_seq(), 3);
        log.publish(rec(4));
        log.advance_to(4);
        assert_eq!(log.leader_seq(), 4);
        match log.after(3) {
            Coverage::Records(rs) => assert_eq!(rs.len(), 1),
            other => panic!("expected records, got {other:?}"),
        }
    }

    #[test]
    fn wait_newer_wakes_on_publish_and_close() {
        let log = std::sync::Arc::new(ReplLog::new(8, 0));
        assert!(!log.wait_newer(0, Duration::from_millis(10)), "times out while idle");
        let publisher = {
            let log = log.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                log.publish(rec(1));
            })
        };
        assert!(log.wait_newer(0, Duration::from_secs(5)), "publish wakes the waiter");
        publisher.join().unwrap();
        let closer = {
            let log = log.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                log.close();
            })
        };
        assert!(!log.wait_newer(1, Duration::from_secs(5)), "close wakes without data");
        closer.join().unwrap();
    }
}
