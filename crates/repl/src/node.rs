//! Node wiring: one durable [`RuleApp`] + HTTP server + a replication
//! role, assembled in the right order so `/health` reports the role from
//! the first request and followers reject writes from the first request.
//!
//! A [`LeaderNode`] serves HTTP (classify + rule CRUD) and the replication
//! port; a [`FollowerNode`] serves HTTP (classify + read-only CRUD — rule
//! mutations answer 409) and tails the leader. Both own their storage and
//! recover from it on start, so either side can crash and return.

use crate::follower::{FollowerConfig, ReplFollower};
use crate::leader::{LeaderConfig, ReplLeader};
use rulekit_chimera::{Chimera, ChimeraConfig};
use rulekit_data::Taxonomy;
use rulekit_net::{NetConfig, NetServer, RuleApp};
use rulekit_obs::Registry;
use rulekit_serve::ServeConfig;
use rulekit_store::{DurableConfig, DurableRepository, Storage, StoreError};
use std::net::SocketAddr;
use std::sync::Arc;

/// Everything below the replication role: HTTP front-end, serving tier,
/// durable store.
#[derive(Debug, Clone, Default)]
pub struct NodeConfig {
    /// HTTP front-end tuning (bind address, handler pool, timeouts).
    pub net: NetConfig,
    /// Serving-tier tuning (shards, refresh interval, admission).
    pub serve: ServeConfig,
    /// Durable-store tuning (fsync policy, compaction).
    pub store: DurableConfig,
}

fn build_app(storage: Arc<dyn Storage>, cfg: &NodeConfig) -> Result<RuleApp, StoreError> {
    let chimera = Arc::new(Chimera::new(Taxonomy::builtin(), ChimeraConfig::default()));
    RuleApp::durable(chimera, storage, cfg.store, cfg.serve.clone())
}

/// A leader: HTTP + replication port, accepts writes.
pub struct LeaderNode {
    // Declaration order is drop order: stop taking HTTP traffic first,
    // then stop shipping.
    server: NetServer,
    repl: ReplLeader,
    store: Arc<DurableRepository>,
    registry: Arc<Registry>,
}

impl LeaderNode {
    /// Recovers the catalog from `storage`, starts the replication port,
    /// then opens the HTTP front-end.
    pub fn start(
        storage: Arc<dyn Storage>,
        cfg: NodeConfig,
        leader_cfg: LeaderConfig,
    ) -> Result<LeaderNode, StoreError> {
        let app = build_app(storage, &cfg)?;
        let store = app.store.clone().expect("durable app has a store");
        let registry = app.registry.clone();
        let repl = ReplLeader::start(store.clone(), leader_cfg, &registry)?;
        let app = app.with_replication(repl.info());
        let server = NetServer::start(app, cfg.net)?;
        Ok(LeaderNode { server, repl, store, registry })
    }

    /// HTTP address (classify + CRUD).
    pub fn http_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Replication address followers dial.
    pub fn repl_addr(&self) -> SocketAddr {
        self.repl.local_addr()
    }

    /// The durable store (direct edit handle for tests/benches).
    pub fn store(&self) -> &Arc<DurableRepository> {
        &self.store
    }

    /// The node's metrics registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The replication handle.
    pub fn repl(&self) -> &ReplLeader {
        &self.repl
    }
}

/// A follower: HTTP (reads + classify; writes answer 409) tailing a leader.
pub struct FollowerNode {
    server: NetServer,
    repl: ReplFollower,
    store: Arc<DurableRepository>,
    registry: Arc<Registry>,
}

impl FollowerNode {
    /// Recovers local state from `storage`, starts tailing the leader (the
    /// leader may be down — the follower backoff-retries), then opens the
    /// HTTP front-end.
    pub fn start(
        storage: Arc<dyn Storage>,
        cfg: NodeConfig,
        follower_cfg: FollowerConfig,
    ) -> Result<FollowerNode, StoreError> {
        let app = build_app(storage, &cfg)?;
        let store = app.store.clone().expect("durable app has a store");
        let registry = app.registry.clone();
        let repl = ReplFollower::start(store.clone(), follower_cfg, &registry);
        let app = app.with_replication(repl.info());
        let server = NetServer::start(app, cfg.net)?;
        Ok(FollowerNode { server, repl, store, registry })
    }

    /// HTTP address (classify + read-only CRUD).
    pub fn http_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The durable store (inspection handle for tests/benches).
    pub fn store(&self) -> &Arc<DurableRepository> {
        &self.store
    }

    /// The node's metrics registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The replication handle.
    pub fn repl(&self) -> &ReplFollower {
        &self.repl
    }
}
