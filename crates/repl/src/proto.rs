//! The replication wire protocol: length-prefixed, CRC-32-framed messages
//! over a plain TCP stream, reusing the store's binary codec so the whole
//! stack has exactly one encoding discipline.
//!
//! Frame layout (everything little-endian):
//!
//! ```text
//! [payload_len: u32][crc32(payload): u32][payload]
//! payload = [kind: u8][kind-specific fields]
//! ```
//!
//! Kinds:
//!
//! | kind | name      | direction         | fields                                                    |
//! |-----:|-----------|-------------------|-----------------------------------------------------------|
//! | 1    | Hello     | follower → leader | proto version u32, last_seq u64, epoch u64, force_snap u8 |
//! | 2    | Snapshot  | leader → follower | ts_nanos u64, epoch u64, `CheckpointData::encode` bytes   |
//! | 3    | Record    | leader → follower | ts_nanos u64, one `WalRecord::encode_frame`               |
//! | 4    | Heartbeat | leader → follower | ts_nanos u64, leader_seq u64                              |
//!
//! `epoch` is the leader's incarnation counter (bumped at every leader
//! start). A follower sends the epoch it last installed state under; the
//! leader forces a snapshot on any mismatch, because revision arithmetic
//! alone cannot see a leader that lost an unsynced WAL tail, restarted, and
//! re-advanced past the follower's revision with different history. Epoch
//! `0` means "unknown" and never matches.
//!
//! A `Record` payload embeds the record's *WAL frame* (the record's own
//! length, CRC, and payload), so a shipped record is covered by two
//! independent checksums and the follower appends the exact bytes the
//! leader logged. Torn or corrupt frames surface as
//! [`StoreError::Corrupt`]; transport failures as [`StoreError::Io`] — the
//! session loop treats both as "drop the connection and resync", never a
//! panic.

use rulekit_store::codec::{put_u32, put_u64, Cursor};
use rulekit_store::{crc32, CheckpointData, StoreError, WalRecord};
use std::io::{Read, Write};

/// Protocol version in `Hello`; a leader refuses mismatches so a frame
/// layout change cannot be half-understood. v2 added the epoch fields to
/// `Hello` and `Snapshot`.
pub const PROTO_VERSION: u32 = 2;

/// Frame size ceiling — generous because a `Snapshot` carries the full
/// catalog (the WAL's own per-record ceiling is 16 MB).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

const KIND_HELLO: u8 = 1;
const KIND_SNAPSHOT: u8 = 2;
const KIND_RECORD: u8 = 3;
const KIND_HEARTBEAT: u8 = 4;

/// One protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Follower's opening message: where its log ends, which leader
    /// incarnation last fed it (0 = unknown), and whether it wants a full
    /// snapshot regardless (the divergence-recovery path).
    Hello { last_seq: u64, epoch: u64, force_snapshot: bool },
    /// Full-catalog catch-up image, stamped with the leader's epoch; the
    /// follower installs it and resumes the stream from the snapshot's
    /// revision.
    Snapshot { ts_nanos: u64, epoch: u64, data: CheckpointData },
    /// One WAL record, as the leader logged it.
    Record { ts_nanos: u64, record: WalRecord },
    /// Liveness + lag signal while the log is idle.
    Heartbeat { ts_nanos: u64, leader_seq: u64 },
}

impl Frame {
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Frame::Hello { last_seq, epoch, force_snapshot } => {
                out.push(KIND_HELLO);
                put_u32(&mut out, PROTO_VERSION);
                put_u64(&mut out, *last_seq);
                put_u64(&mut out, *epoch);
                out.push(u8::from(*force_snapshot));
            }
            Frame::Snapshot { ts_nanos, epoch, data } => {
                out.push(KIND_SNAPSHOT);
                put_u64(&mut out, *ts_nanos);
                put_u64(&mut out, *epoch);
                out.extend_from_slice(&data.encode());
            }
            Frame::Record { ts_nanos, record } => {
                out.push(KIND_RECORD);
                put_u64(&mut out, *ts_nanos);
                out.extend_from_slice(&record.encode_frame());
            }
            Frame::Heartbeat { ts_nanos, leader_seq } => {
                out.push(KIND_HEARTBEAT);
                put_u64(&mut out, *ts_nanos);
                put_u64(&mut out, *leader_seq);
            }
        }
        out
    }

    /// Serializes into a complete wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        frame
    }

    fn decode_payload(payload: &[u8]) -> Result<Frame, StoreError> {
        let mut c = Cursor::new(payload);
        let kind = c.get_u8()?;
        match kind {
            KIND_HELLO => {
                let version = c.get_u32()?;
                if version != PROTO_VERSION {
                    return Err(StoreError::Corrupt(format!(
                        "protocol version mismatch: peer speaks {version}, this node {PROTO_VERSION}"
                    )));
                }
                let last_seq = c.get_u64()?;
                let epoch = c.get_u64()?;
                let force_snapshot = c.get_u8()? != 0;
                expect_drained(&c)?;
                Ok(Frame::Hello { last_seq, epoch, force_snapshot })
            }
            KIND_SNAPSHOT => {
                let ts_nanos = c.get_u64()?;
                let epoch = c.get_u64()?;
                let data = CheckpointData::decode(c.rest())?;
                Ok(Frame::Snapshot { ts_nanos, epoch, data })
            }
            KIND_RECORD => {
                let ts_nanos = c.get_u64()?;
                let record = WalRecord::decode_frame(c.rest())?;
                Ok(Frame::Record { ts_nanos, record })
            }
            KIND_HEARTBEAT => {
                let ts_nanos = c.get_u64()?;
                let leader_seq = c.get_u64()?;
                expect_drained(&c)?;
                Ok(Frame::Heartbeat { ts_nanos, leader_seq })
            }
            other => Err(StoreError::Corrupt(format!("unknown frame kind {other}"))),
        }
    }
}

fn expect_drained(c: &Cursor<'_>) -> Result<(), StoreError> {
    if c.remaining() != 0 {
        return Err(StoreError::Corrupt(format!("{} trailing frame bytes", c.remaining())));
    }
    Ok(())
}

/// Writes one frame (buffered by the caller's stream; flushed here).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

/// Reads one frame, verifying length bound and checksum. Blocks up to the
/// stream's read timeout; a timeout surfaces as [`StoreError::Io`].
pub fn read_frame(r: &mut impl Read) -> Result<Frame, StoreError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return Err(StoreError::Corrupt(format!("implausible frame length {len}")));
    }
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if crc32(&payload) != crc {
        return Err(StoreError::Corrupt("frame checksum mismatch".into()));
    }
    Frame::decode_payload(&payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rulekit_store::{CheckpointRule, WalOp};

    fn sample_record() -> WalRecord {
        WalRecord {
            revision: 42,
            op: WalOp::Add {
                id: 7,
                source: "rings? -> rings".into(),
                author: "analyst".into(),
                provenance: 0,
                status: 0,
                confidence: 0.9,
                added_at: 41,
            },
        }
    }

    fn roundtrip(frame: Frame) {
        let bytes = frame.encode();
        let mut cursor = &bytes[..];
        let decoded = read_frame(&mut cursor).expect("roundtrip");
        assert_eq!(decoded, frame);
        assert!(cursor.is_empty(), "frame self-describes its length");
    }

    #[test]
    fn all_kinds_roundtrip() {
        roundtrip(Frame::Hello { last_seq: 9, epoch: 3, force_snapshot: true });
        roundtrip(Frame::Heartbeat { ts_nanos: 123, leader_seq: 5 });
        roundtrip(Frame::Record { ts_nanos: 7, record: sample_record() });
        roundtrip(Frame::Snapshot {
            ts_nanos: 1,
            epoch: 2,
            data: CheckpointData {
                revision: 3,
                next_id: 4,
                rules: vec![CheckpointRule {
                    id: 1,
                    source: "rings? -> rings".into(),
                    author: String::new(),
                    provenance: 0,
                    status: 0,
                    confidence: 1.0,
                    added_at: 0,
                }],
            },
        });
    }

    #[test]
    fn torn_and_corrupt_frames_are_errors_not_panics() {
        let bytes = Frame::Heartbeat { ts_nanos: 1, leader_seq: 2 }.encode();
        // Torn at every prefix length.
        for cut in 0..bytes.len() {
            let mut cursor = &bytes[..cut];
            assert!(read_frame(&mut cursor).is_err(), "cut at {cut} must fail");
        }
        // Any single flipped bit fails the checksum (or the parse).
        for byte in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[byte] ^= 0x10;
            let mut cursor = &bad[..];
            assert!(read_frame(&mut cursor).is_err(), "flip in byte {byte} must fail");
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = Frame::Hello { last_seq: 0, epoch: 0, force_snapshot: false }.encode();
        bytes[9] = 99; // version field, first payload byte after kind
                       // Re-stamp the CRC so only the version check can object.
        let crc = crc32(&bytes[8..]);
        bytes[4..8].copy_from_slice(&crc.to_le_bytes());
        let mut cursor = &bytes[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = vec![];
        put_u32(&mut bytes, MAX_FRAME + 1);
        put_u32(&mut bytes, 0);
        let mut cursor = &bytes[..];
        assert!(read_frame(&mut cursor).is_err());
    }
}
