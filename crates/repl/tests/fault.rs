//! Seeded fault injection for the replication layer. Every scenario the
//! tentpole promises to survive, induced on purpose:
//!
//! * torn replication frames (a chaos proxy cuts the byte stream at seeded
//!   offsets, mid-frame included);
//! * network partitions (the proxy refuses connections for a while);
//! * follower crash + reopen with a torn local WAL tail (power loss via
//!   `MemStorage::crash`), *interleaved* with stream truncation — the
//!   crash/reopen fuzz from `rulekit-store`, extended across the wire;
//! * a leader restart that lost an unsynced tail (the follower is *ahead*
//!   and must rebuild from the new leader's snapshot);
//! * a front tier shedding a dead replica through its circuit breaker and
//!   recovering it through a half-open probe.
//!
//! The invariant everywhere: no divergence (catalog hashes converge), no
//! panic, no stuck state — every fault ends in Tailing.

use rand::{rngs::StdRng, Rng, SeedableRng};
use rulekit_chimera::{Chimera, ChimeraConfig};
use rulekit_core::{RuleMeta, RuleParser};
use rulekit_data::Taxonomy;
use rulekit_net::{
    BreakerConfig, FrontConfig, FrontTier, NetConfig, NetServer, RetryPolicy, RuleApp,
};
use rulekit_obs::Registry;
use rulekit_repl::{FollowerConfig, FollowerState, LeaderConfig, ReplFollower, ReplLeader};
use rulekit_serve::ServeConfig;
use rulekit_store::{catalog_hash, DurableConfig, DurableRepository, MemStorage, Storage};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Chaos proxy
// ---------------------------------------------------------------------------

/// What the proxy does with the *next* connection.
#[derive(Debug, Clone, Copy)]
enum Chaos {
    /// Pass bytes through faithfully.
    Forward,
    /// Refuse (accept + immediately close): a partitioned network.
    Partition,
    /// Forward exactly `n` upstream→downstream bytes, then cut both ways —
    /// a torn frame when `n` lands mid-frame (it usually does).
    TruncateAfter(usize),
}

/// A TCP proxy the follower dials instead of the leader, so tests can tear
/// the stream at chosen byte offsets, partition the link, or silently
/// retarget to a different (restarted) leader.
struct ChaosProxy {
    local: SocketAddr,
    upstream: Arc<Mutex<SocketAddr>>,
    mode: Arc<Mutex<Chaos>>,
    live: Arc<Mutex<Vec<TcpStream>>>,
    shutdown: Arc<AtomicBool>,
}

impl ChaosProxy {
    fn start(upstream: SocketAddr) -> ChaosProxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        let local = listener.local_addr().expect("proxy addr");
        let upstream = Arc::new(Mutex::new(upstream));
        let mode = Arc::new(Mutex::new(Chaos::Forward));
        let live: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        {
            let upstream = upstream.clone();
            let mode = mode.clone();
            let live = live.clone();
            let shutdown = shutdown.clone();
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    let Ok(client) = conn else { continue };
                    let chaos = *mode.lock().unwrap();
                    let target = *upstream.lock().unwrap();
                    match chaos {
                        Chaos::Partition => drop(client),
                        Chaos::Forward => pump_pair(client, target, usize::MAX, &live),
                        Chaos::TruncateAfter(n) => pump_pair(client, target, n, &live),
                    }
                }
            });
        }
        ChaosProxy { local, upstream, mode, live, shutdown }
    }

    fn set_mode(&self, mode: Chaos) {
        *self.mode.lock().unwrap() = mode;
    }

    /// Kills every live proxied connection (chaos modes only apply to new
    /// connections; this forces the follower through a reconnect so the
    /// next mode actually bites).
    fn cut_live(&self) {
        let mut live = self.live.lock().unwrap();
        for sock in live.drain(..) {
            let _ = sock.shutdown(Shutdown::Both);
        }
    }

    fn retarget(&self, upstream: SocketAddr) {
        *self.upstream.lock().unwrap() = upstream;
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.local);
    }
}

/// Wires `client` to `target`, forwarding at most `budget` bytes in the
/// upstream→client direction before cutting both sockets.
fn pump_pair(
    client: TcpStream,
    target: SocketAddr,
    budget: usize,
    live: &Arc<Mutex<Vec<TcpStream>>>,
) {
    let Ok(server) = TcpStream::connect_timeout(&target, Duration::from_secs(2)) else {
        return; // upstream down: equivalent to a refused connection
    };
    {
        let mut reg = live.lock().unwrap();
        reg.push(client.try_clone().unwrap());
        reg.push(server.try_clone().unwrap());
    }
    let up = {
        let (client, server) = (client.try_clone().unwrap(), server.try_clone().unwrap());
        std::thread::spawn(move || pump(client, server, usize::MAX))
    };
    let down = std::thread::spawn(move || pump(server, client, budget));
    // Detach: each pump exits when its sockets die; `pump` tears both
    // directions down when the budget runs out.
    drop((up, down));
}

fn pump(mut from: TcpStream, mut to: TcpStream, mut budget: usize) {
    let mut buf = [0u8; 256];
    loop {
        let want = buf.len().min(budget.max(1)).max(1);
        let n = match from.read(&mut buf[..want]) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let allowed = n.min(budget);
        if allowed > 0 && to.write_all(&buf[..allowed]).is_err() {
            break;
        }
        budget -= allowed;
        if budget == 0 {
            break;
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

// ---------------------------------------------------------------------------
// Shared setup
// ---------------------------------------------------------------------------

const SOURCES: &[&str] = &[
    "rings? -> rings",
    "wedding bands? -> rings",
    "rugs? -> area rugs",
    "sofas? -> sofas",
    "necklaces? -> necklaces",
    "laptop bags? -> NOT laptop computers",
];

fn parser() -> RuleParser {
    RuleParser::new(Taxonomy::builtin())
}

fn open_store(storage: &Arc<MemStorage>) -> Arc<DurableRepository> {
    Arc::new(
        DurableRepository::open(
            Arc::clone(storage) as Arc<dyn Storage>,
            parser(),
            DurableConfig::default(),
        )
        .expect("open store"),
    )
}

fn leader_cfg() -> LeaderConfig {
    LeaderConfig { heartbeat: Duration::from_millis(50), ..Default::default() }
}

fn follower_cfg(leader_addr: SocketAddr, seed: u64) -> FollowerConfig {
    let mut cfg = FollowerConfig::new(leader_addr);
    cfg.heartbeat_deadline = Duration::from_millis(300);
    cfg.backoff_base = Duration::from_millis(10);
    cfg.backoff_cap = Duration::from_millis(80);
    cfg.seed = seed;
    cfg
}

fn add_random_rule(store: &DurableRepository, rng: &mut StdRng) {
    let source = SOURCES[rng.gen_range(0..SOURCES.len())];
    store.add_rules(source, &RuleMeta::default()).expect("leader edit");
}

fn wait_converged(leader: &DurableRepository, follower: &DurableRepository, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let (l, f) = (catalog_hash(leader.repository()), catalog_hash(follower.repository()));
        if l == f {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for convergence after {what}: leader {l:016x} follower {f:016x}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// Torn frames at seeded offsets: the stream is cut mid-frame again and
/// again; every cut ends in reconnect + idempotent resume, never
/// divergence or a stuck state.
#[test]
fn torn_frames_at_seeded_offsets_never_diverge() {
    let mut rng = StdRng::seed_from_u64(0x7ea2);
    let leader_store = open_store(&Arc::new(MemStorage::new()));
    let registry = Registry::new();
    let leader = ReplLeader::start(leader_store.clone(), leader_cfg(), &registry).expect("leader");
    let proxy = ChaosProxy::start(leader.local_addr());

    let f_store = open_store(&Arc::new(MemStorage::new()));
    let f_registry = Registry::new();
    let follower =
        ReplFollower::start(f_store.clone(), follower_cfg(proxy.local, 0x7ea2), &f_registry);

    for round in 0..12 {
        // Leave records to catch up on, then cut the live session and make
        // the reconnect's catch-up stream tear somewhere inside its first
        // frames (the replay of those records).
        add_random_rule(&leader_store, &mut rng);
        proxy.set_mode(Chaos::TruncateAfter(rng.gen_range(1..200)));
        proxy.cut_live();
        // Give the torn reconnect a moment to die mid-replay, then heal.
        std::thread::sleep(Duration::from_millis(rng.gen_range(15..60)));
        proxy.set_mode(Chaos::Forward);
        proxy.cut_live();
        wait_converged(&leader_store, &f_store, &format!("torn round {round}"));
    }
    assert!(
        follower.wait_for_state(FollowerState::Tailing, Duration::from_secs(5)),
        "follower stuck in {:?}",
        follower.state()
    );
    assert!(
        f_registry.counter("rulekit_repl_reconnects_total").value() > 0,
        "the chaos proxy never actually tore a session"
    );
}

/// A partition long enough to miss the heartbeat deadline marks the
/// follower Stale; healing the link brings it back to Tailing with the
/// leader's exact catalog.
#[test]
fn partition_marks_follower_stale_then_heals_to_tailing() {
    let leader_store = open_store(&Arc::new(MemStorage::new()));
    let registry = Registry::new();
    let leader = ReplLeader::start(leader_store.clone(), leader_cfg(), &registry).expect("leader");
    let proxy = ChaosProxy::start(leader.local_addr());

    let f_store = open_store(&Arc::new(MemStorage::new()));
    let f_registry = Registry::new();
    let follower =
        ReplFollower::start(f_store.clone(), follower_cfg(proxy.local, 0xbad), &f_registry);
    leader_store.add_rules("rings? -> rings", &RuleMeta::default()).unwrap();
    wait_converged(&leader_store, &f_store, "initial sync");
    assert!(follower.wait_for_state(FollowerState::Tailing, Duration::from_secs(5)));

    // Partition the link: new connections are refused, and the live
    // session dies with the old leader (chaos applies per connection, so
    // dropping the leader is what cuts the already-wired pumps). This
    // doubles as the leader-restart drill: a new leader comes up on the
    // same store and the proxy silently retargets.
    proxy.set_mode(Chaos::Partition);
    drop(leader);
    assert!(
        follower.wait_for_state(FollowerState::Stale, Duration::from_secs(5)),
        "partitioned follower must report stale, got {:?}",
        follower.state()
    );

    let leader2 =
        ReplLeader::start(leader_store.clone(), leader_cfg(), &registry).expect("leader2");
    proxy.retarget(leader2.local_addr());
    leader_store.add_rules("sofas? -> sofas", &RuleMeta::default()).unwrap();
    proxy.set_mode(Chaos::Forward);
    wait_converged(&leader_store, &f_store, "partition heal");
    assert!(
        follower.wait_for_state(FollowerState::Tailing, Duration::from_secs(5)),
        "healed follower must tail again, got {:?}",
        follower.state()
    );
}

/// A restarted leader that lost an unsynced tail leaves the follower
/// *ahead*; the follower must detect it (cursor > leader head ⇒ gap ⇒
/// snapshot) and mirror the new leader's catalog, even backwards.
#[test]
fn leader_restart_with_lost_tail_rebuilds_follower_from_snapshot() {
    let leader1_store = open_store(&Arc::new(MemStorage::new()));
    let registry = Registry::new();
    let leader1 =
        ReplLeader::start(leader1_store.clone(), leader_cfg(), &registry).expect("leader1");
    let proxy = ChaosProxy::start(leader1.local_addr());

    let f_store = open_store(&Arc::new(MemStorage::new()));
    let f_registry = Registry::new();
    let follower =
        ReplFollower::start(f_store.clone(), follower_cfg(proxy.local, 0x10af), &f_registry);
    for _ in 0..5 {
        leader1_store.add_rules("rings? -> rings", &RuleMeta::default()).unwrap();
    }
    wait_converged(&leader1_store, &f_store, "pre-restart sync");
    assert!(f_store.repository().revision() >= 5);

    // "Restart" the leader from a blank disk with a shorter history — the
    // follower is now ahead of the leader it reconnects to.
    proxy.set_mode(Chaos::Partition);
    drop(leader1);
    let leader2_store = open_store(&Arc::new(MemStorage::new()));
    leader2_store.add_rules("sofas? -> sofas", &RuleMeta::default()).unwrap();
    let leader2 =
        ReplLeader::start(leader2_store.clone(), leader_cfg(), &registry).expect("leader2");
    proxy.retarget(leader2.local_addr());
    proxy.set_mode(Chaos::Forward);

    wait_converged(&leader2_store, &f_store, "lost-tail rebuild");
    assert!(follower.wait_for_state(FollowerState::Tailing, Duration::from_secs(5)));
    assert!(
        f_registry.counter("rulekit_repl_snapshots_installed_total").value() >= 1,
        "an ahead-of-leader follower can only reconcile by snapshot"
    );
    assert_eq!(f_store.repository().revision(), leader2_store.repository().revision());
}

/// The nastiest divergence: a leader loses an unsynced WAL tail, restarts,
/// and re-advances to the *same* revision with different history. Revision
/// arithmetic alone cannot see this — the follower's cursor equals the
/// leader's head, so the ring answers UpToDate and the follower would tail
/// a fork forever while reporting healthy. The leader epoch (bumped each
/// start, compared at handshake) must force a snapshot instead.
#[test]
fn leader_restart_at_same_revision_is_caught_by_epoch_not_revision() {
    let leader_mem = Arc::new(MemStorage::new());
    let leader1_store = open_store(&leader_mem);
    let registry = Registry::new();
    let leader1 =
        ReplLeader::start(leader1_store.clone(), leader_cfg(), &registry).expect("leader1");
    let proxy = ChaosProxy::start(leader1.local_addr());

    let f_store = open_store(&Arc::new(MemStorage::new()));
    let f_registry = Registry::new();
    let follower =
        ReplFollower::start(f_store.clone(), follower_cfg(proxy.local, 0xe90c), &f_registry);
    for source in ["rings? -> rings", "rugs? -> area rugs", "sofas? -> sofas"] {
        leader1_store.add_rules(source, &RuleMeta::default()).unwrap();
    }
    wait_converged(&leader1_store, &f_store, "pre-fork sync");

    // Power-loss the leader with its last acknowledged record unsynced:
    // drop everything, then chop the final record off the WAL.
    proxy.set_mode(Chaos::Partition);
    drop(leader1);
    drop(leader1_store);
    let wal_bytes = leader_mem.read(rulekit_store::WAL_NAME).expect("leader wal");
    let scan = rulekit_store::wal::scan(&wal_bytes);
    let cut = *scan.record_starts.last().expect("records in wal");
    leader_mem.truncate(rulekit_store::WAL_NAME, cut).expect("drop unsynced tail");

    // The restarted leader re-advances to the follower's exact revision
    // with *different* history.
    let leader2_store = open_store(&leader_mem);
    assert_eq!(leader2_store.repository().revision() + 1, f_store.repository().revision());
    leader2_store.add_rules("necklaces? -> necklaces", &RuleMeta::default()).unwrap();
    assert_eq!(leader2_store.repository().revision(), f_store.repository().revision());
    assert_ne!(
        catalog_hash(leader2_store.repository()),
        catalog_hash(f_store.repository()),
        "same revision, forked history — the scenario under test"
    );

    let leader2 =
        ReplLeader::start(leader2_store.clone(), leader_cfg(), &registry).expect("leader2");
    assert!(leader2.epoch() > 1, "restart must bump the persisted epoch");
    proxy.retarget(leader2.local_addr());
    proxy.set_mode(Chaos::Forward);

    wait_converged(&leader2_store, &f_store, "epoch-forced resync");
    assert!(follower.wait_for_state(FollowerState::Tailing, Duration::from_secs(5)));
    assert!(
        f_registry.counter("rulekit_repl_snapshots_installed_total").value() >= 2,
        "the fork is only healable by an epoch-forced snapshot"
    );
}

/// The crash/reopen fuzz, extended across the wire: each seeded cycle
/// interleaves leader edits, replication-stream truncation at a random
/// offset, a follower power-loss crash with a randomly torn WAL tail, and
/// a reopen. After every cycle the recovered follower must reconverge to
/// the leader exactly — torn-tail repair and idempotent re-ship composing,
/// never compounding.
#[test]
fn fuzz_stream_truncation_interleaved_with_follower_torn_tail_repair() {
    let seeds: Vec<u64> = std::env::var("RULEKIT_REPL_FUZZ_SEEDS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![3, 1729]);
    for seed in seeds {
        fuzz_cycle(seed, 8);
    }
}

fn fuzz_cycle(seed: u64, cycles: u32) {
    let mut rng = StdRng::seed_from_u64(seed);
    let leader_store = open_store(&Arc::new(MemStorage::new()));
    let registry = Registry::new();
    let leader = ReplLeader::start(leader_store.clone(), leader_cfg(), &registry).expect("leader");
    let proxy = ChaosProxy::start(leader.local_addr());

    let f_mem = Arc::new(MemStorage::new());
    let mut f_store = open_store(&f_mem);
    let mut follower = Some(ReplFollower::start(
        f_store.clone(),
        follower_cfg(proxy.local, seed),
        &Registry::new(),
    ));

    for cycle in 0..cycles {
        for _ in 0..rng.gen_range(1..4) {
            add_random_rule(&leader_store, &mut rng);
        }
        match rng.gen_range(0u32..3) {
            // Torn stream only.
            0 => {
                proxy.set_mode(Chaos::TruncateAfter(rng.gen_range(1..300)));
                proxy.cut_live();
                std::thread::sleep(Duration::from_millis(rng.gen_range(5..30)));
                proxy.set_mode(Chaos::Forward);
                proxy.cut_live();
            }
            // Follower crash: drop the replication thread and the store,
            // then power-loss the storage (each unsynced tail torn at a
            // random cut) and reopen. Torn-tail repair runs on reopen.
            1 => {
                drop(follower.take());
                drop(f_store);
                f_mem.crash(|_, unsynced| rng.gen_range(0..=unsynced));
                f_store = open_store(&f_mem);
                follower = Some(ReplFollower::start(
                    f_store.clone(),
                    follower_cfg(proxy.local, seed ^ u64::from(cycle)),
                    &Registry::new(),
                ));
            }
            // Both at once: crash the follower (torn WAL tail), reopen, and
            // let its *first* catch-up session tear mid-stream too.
            _ => {
                proxy.set_mode(Chaos::TruncateAfter(rng.gen_range(1..150)));
                drop(follower.take());
                drop(f_store);
                f_mem.crash(|_, unsynced| rng.gen_range(0..=unsynced));
                f_store = open_store(&f_mem);
                follower = Some(ReplFollower::start(
                    f_store.clone(),
                    follower_cfg(proxy.local, seed.rotate_left(cycle)),
                    &Registry::new(),
                ));
                std::thread::sleep(Duration::from_millis(rng.gen_range(10..40)));
                proxy.set_mode(Chaos::Forward);
                proxy.cut_live();
            }
        }
        wait_converged(&leader_store, &f_store, &format!("seed {seed} cycle {cycle}"));
    }
    let f = follower.as_ref().expect("follower alive at end");
    assert!(
        f.wait_for_state(FollowerState::Tailing, Duration::from_secs(5)),
        "seed {seed}: follower finished in {:?}, not tailing",
        f.state()
    );
}

// ---------------------------------------------------------------------------
// Front tier: breaker shed + half-open recovery against real servers
// ---------------------------------------------------------------------------

fn replica_server(addr: &str) -> NetServer {
    let chimera = Chimera::new(Taxonomy::builtin(), ChimeraConfig::default());
    chimera.add_rules("rings? -> rings\n").unwrap();
    let serve = ServeConfig {
        shards: 2,
        refresh_interval: Duration::from_millis(10),
        ..Default::default()
    };
    let app = RuleApp::in_memory(Arc::new(chimera), serve);
    let cfg = NetConfig { addr: addr.to_string(), ..Default::default() };
    NetServer::start(app, cfg).expect("replica server")
}

#[test]
fn front_tier_sheds_dead_replica_and_recovers_it_via_half_open_probe() {
    let r1 = replica_server("127.0.0.1:0");
    let r2 = replica_server("127.0.0.1:0");
    let (a1, a2) = (r1.local_addr(), r2.local_addr());

    let registry = Registry::new();
    let front = FrontTier::with_registry(
        FrontConfig {
            leader: a1,
            replicas: vec![a1, a2],
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_millis(150),
                timeout: Duration::from_secs(1),
            },
            retry: RetryPolicy::default(),
        },
        &registry,
    );

    let body = "{\"title\": \"diamond wedding ring\"}";
    for _ in 0..4 {
        let r = front.classify(body).expect("classify with both replicas up");
        assert_eq!(r.status, 200, "{}", r.text());
    }

    // Kill replica 2. Every classify must still succeed (failover), and
    // within a few rounds r2's breaker trips open.
    drop(r2);
    for _ in 0..10 {
        let r = front.classify(body).expect("classify must fail over");
        assert_eq!(r.status, 200, "{}", r.text());
    }
    assert_eq!(front.breaker_states()[1], "open", "states: {:?}", front.breaker_states());
    assert!(registry.counter("rulekit_front_breaker_trips_total").value() >= 1);

    // While open, traffic is shed away from r2 — requests keep succeeding
    // without paying r2's connect timeout.
    let t = Instant::now();
    for _ in 0..6 {
        front.classify(body).expect("shed traffic still serves");
    }
    assert!(t.elapsed() < Duration::from_secs(1), "open breaker must not stall traffic");

    // Bring r2 back on the same port, wait out the cooldown: the half-open
    // probe closes the breaker again.
    let r2 = replica_server(&a2.to_string());
    std::thread::sleep(Duration::from_millis(200));
    let deadline = Instant::now() + Duration::from_secs(5);
    while front.breaker_states()[1] != "closed" {
        front.classify(body).expect("probe traffic");
        assert!(Instant::now() < deadline, "breaker never recovered: {:?}", front.breaker_states());
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(registry.counter("rulekit_front_breaker_recoveries_total").value() >= 1);
    drop(r2);
    drop(r1);
}
