//! End-to-end replication: an in-process leader with two followers
//! (convergence, crash/resume-by-records, lag metrics), and the
//! acceptance-path multi-process test — one leader and two follower
//! *processes*, an edit landing over HTTP and becoming visible on both
//! followers within bounded lag, then a follower killed and restarted and
//! returning to `tailing` with an identical catalog hash.

use rulekit_core::RuleMeta;
use rulekit_core::RuleParser;
use rulekit_data::Taxonomy;
use rulekit_net::HttpClient;
use rulekit_obs::Registry;
use rulekit_repl::{FollowerConfig, FollowerState, LeaderConfig, ReplFollower, ReplLeader};
use rulekit_store::{catalog_hash, DurableConfig, DurableRepository, MemStorage, Storage};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn parser() -> RuleParser {
    RuleParser::new(Taxonomy::builtin())
}

fn open_store(storage: &Arc<MemStorage>) -> Arc<DurableRepository> {
    Arc::new(
        DurableRepository::open(
            Arc::clone(storage) as Arc<dyn Storage>,
            parser(),
            DurableConfig::default(),
        )
        .expect("open store"),
    )
}

fn fast_follower_cfg(leader_addr: SocketAddr, seed: u64) -> FollowerConfig {
    let mut cfg = FollowerConfig::new(leader_addr);
    cfg.heartbeat_deadline = Duration::from_millis(400);
    cfg.backoff_base = Duration::from_millis(10);
    cfg.backoff_cap = Duration::from_millis(100);
    cfg.seed = seed;
    cfg
}

fn fast_leader_cfg() -> LeaderConfig {
    LeaderConfig { heartbeat: Duration::from_millis(50), ..Default::default() }
}

fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(cond(), "timed out waiting for {what}");
}

#[test]
fn leader_and_two_followers_converge_then_crashed_follower_resumes_by_records() {
    let leader_store = open_store(&Arc::new(MemStorage::new()));
    let leader_registry = Registry::new();
    let leader = ReplLeader::start(leader_store.clone(), fast_leader_cfg(), &leader_registry)
        .expect("leader start");

    // Two edits land *before* any follower exists: follower 1 must catch up
    // from history (here: ring replay from revision 0).
    leader_store.add_rules("rings? -> rings\n", &RuleMeta::default()).unwrap();
    leader_store.add_rules("sofas? -> sofas\n", &RuleMeta::default()).unwrap();

    let f1_storage = Arc::new(MemStorage::new());
    let f1_store = open_store(&f1_storage);
    let f1_registry = Registry::new();
    let f1 = ReplFollower::start(
        f1_store.clone(),
        fast_follower_cfg(leader.local_addr(), 1),
        &f1_registry,
    );

    let f2_storage = Arc::new(MemStorage::new());
    let f2_store = open_store(&f2_storage);
    let f2_registry = Registry::new();
    let f2 = ReplFollower::start(
        f2_store.clone(),
        fast_follower_cfg(leader.local_addr(), 2),
        &f2_registry,
    );

    let target = catalog_hash(leader_store.repository());
    wait_until("both followers converge", Duration::from_secs(10), || {
        catalog_hash(f1_store.repository()) == target
            && catalog_hash(f2_store.repository()) == target
    });
    assert!(f1.wait_for_state(FollowerState::Tailing, Duration::from_secs(5)));
    assert!(f2.wait_for_state(FollowerState::Tailing, Duration::from_secs(5)));

    // Lag instrumentation recorded something and the delta gauge settled at 0.
    assert!(f1_registry.histogram("rulekit_repl_edit_visibility_lag_nanos").count() > 0);
    assert_eq!(f1_registry.gauge("rulekit_repl_seq_delta").value(), 0);
    assert_eq!(leader.connected_followers(), 2);

    // Crash follower 2 (drop thread + store), keep editing, reopen from the
    // same storage: it must resume from its own WAL position via record
    // replay — no snapshot needed, nothing applied twice.
    drop(f2);
    drop(f2_store);
    leader_store.add_rules("rugs? -> area rugs\n", &RuleMeta::default()).unwrap();
    leader_store.add_rules("wedding bands? -> rings\n", &RuleMeta::default()).unwrap();

    let f2_store = open_store(&f2_storage);
    let resumed_from = f2_store.repository().revision();
    assert!(resumed_from >= 2, "follower WAL must have persisted replicated records");
    let f2_registry = Registry::new();
    let f2 = ReplFollower::start(
        f2_store.clone(),
        fast_follower_cfg(leader.local_addr(), 3),
        &f2_registry,
    );
    let target = catalog_hash(leader_store.repository());
    wait_until("restarted follower reconverges", Duration::from_secs(10), || {
        catalog_hash(f2_store.repository()) == target
    });
    assert!(f2.wait_for_state(FollowerState::Tailing, Duration::from_secs(5)));
    assert_eq!(
        f2_registry.counter("rulekit_repl_snapshots_installed_total").value(),
        0,
        "a briefly-absent follower resumes by records, not snapshot"
    );
    assert!(f2_registry.counter("rulekit_repl_records_applied_total").value() > 0);

    drop(f1);
    drop(f2);
    let mut leader = leader;
    leader.shutdown();
}

/// A cold follower whose cursor predates the ring (tiny ring + many edits)
/// catches up by snapshot, then tails.
#[test]
fn cold_follower_catches_up_by_snapshot_when_ring_is_too_short() {
    let leader_store = open_store(&Arc::new(MemStorage::new()));
    let leader_registry = Registry::new();
    let cfg = LeaderConfig { ring_capacity: 2, ..fast_leader_cfg() };
    let leader =
        ReplLeader::start(leader_store.clone(), cfg, &leader_registry).expect("leader start");

    for source in [
        "rings? -> rings",
        "sofas? -> sofas",
        "rugs? -> area rugs",
        "wedding bands? -> rings",
        "necklaces? -> necklaces",
    ] {
        leader_store.add_rules(source, &RuleMeta::default()).unwrap();
    }

    let f_store = open_store(&Arc::new(MemStorage::new()));
    let f_registry = Registry::new();
    let f = ReplFollower::start(
        f_store.clone(),
        fast_follower_cfg(leader.local_addr(), 7),
        &f_registry,
    );
    let target = catalog_hash(leader_store.repository());
    wait_until("snapshot catch-up", Duration::from_secs(10), || {
        catalog_hash(f_store.repository()) == target
    });
    assert!(f.wait_for_state(FollowerState::Tailing, Duration::from_secs(5)));
    assert!(
        f_registry.counter("rulekit_repl_snapshots_installed_total").value() >= 1,
        "cursor 0 with a 2-entry ring must go through snapshot catch-up"
    );

    // And it keeps tailing after the snapshot: a fresh edit arrives as a
    // record.
    let applied_before = f_registry.counter("rulekit_repl_records_applied_total").value();
    leader_store.add_rules("lamps? -> NOT rings", &RuleMeta::default()).unwrap();
    let target = catalog_hash(leader_store.repository());
    wait_until("post-snapshot tailing", Duration::from_secs(10), || {
        catalog_hash(f_store.repository()) == target
    });
    assert!(f_registry.counter("rulekit_repl_records_applied_total").value() > applied_before);
}

// ---------------------------------------------------------------------------
// Multi-process acceptance path
// ---------------------------------------------------------------------------

struct NodeProc {
    child: Child,
    http: SocketAddr,
    repl: Option<SocketAddr>,
}

impl NodeProc {
    fn spawn(args: &[&str]) -> NodeProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_repl_node"))
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn repl_node");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = std::io::BufRead::lines(std::io::BufReader::new(stdout));
        let mut http = None;
        let mut repl = None;
        for line in lines.by_ref() {
            let line = line.expect("read child stdout");
            if let Some(addr) = line.strip_prefix("HTTP ") {
                http = Some(addr.parse().expect("http addr"));
            } else if let Some(addr) = line.strip_prefix("REPL ") {
                repl = Some(addr.parse().expect("repl addr"));
            } else if line == "READY" {
                break;
            }
        }
        // Keep draining stdout in the background so the child never blocks
        // on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        NodeProc { child, http: http.expect("child printed HTTP addr"), repl }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Graceful stop: close stdin, wait for exit.
    fn stop(&mut self) {
        drop(self.child.stdin.take());
        let _ = self.child.wait();
    }
}

impl Drop for NodeProc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn http(addr: SocketAddr) -> HttpClient {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match HttpClient::connect(addr, Duration::from_secs(5)) {
            Ok(c) => return c,
            Err(e) => {
                assert!(Instant::now() < deadline, "cannot reach {addr}: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn get_health(addr: SocketAddr) -> String {
    let mut c = http(addr);
    let r = c.get("/health").expect("GET /health");
    assert_eq!(r.status, 200, "{}", r.text());
    r.text().to_string()
}

fn json_str_field(body: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = body.find(&tag)? + tag.len();
    let end = body[start..].find('"')? + start;
    Some(body[start..end].to_string())
}

fn tmp_dir(tag: &str) -> String {
    let dir = std::env::temp_dir().join(format!("rulekit-repl-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.to_string_lossy().into_owned()
}

#[test]
fn multi_process_cluster_replicates_edits_and_survives_follower_restart() {
    let leader_dir = tmp_dir("leader");
    let f1_dir = tmp_dir("f1");
    let f2_dir = tmp_dir("f2");

    let mut leader = NodeProc::spawn(&["leader", "--dir", &leader_dir]);
    let repl_addr = leader.repl.expect("leader prints repl addr").to_string();
    let mut f1 = NodeProc::spawn(&["follower", "--dir", &f1_dir, "--leader", &repl_addr]);
    let mut f2 = NodeProc::spawn(&["follower", "--dir", &f2_dir, "--leader", &repl_addr]);

    // Roles and write fencing: the leader takes the edit, a follower
    // answers 409.
    let mut lc = http(leader.http);
    let health = get_health(leader.http);
    assert!(health.contains("\"role\":\"leader\""), "{health}");
    let mut fc = http(f1.http);
    let rejected = fc.post_json("/rulesets", "{\"rules\": \"rings? -> rings\\n\"}").unwrap();
    assert_eq!(rejected.status, 409, "{}", rejected.text());

    // The edit lands on the leader over HTTP…
    let edited_at = Instant::now();
    let created = lc
        .post_json("/rulesets", "{\"rules\": \"rings? -> rings\\n\", \"author\": \"ops\"}")
        .unwrap();
    assert_eq!(created.status, 201, "{}", created.text());

    // …and must become *classify-visible* on both followers within bounded
    // lag (replication + snapshot swap).
    let lag_bound = Duration::from_secs(10);
    for follower in [f1.http, f2.http] {
        let mut c = http(follower);
        wait_until("edit visible on follower", lag_bound, || {
            let r = c
                .post_json("/classify", "{\"title\": \"diamond wedding ring\"}")
                .expect("classify");
            assert_eq!(r.status, 200, "{}", r.text());
            r.text().contains("\"type\":\"rings\"")
        });
    }
    let visibility_lag = edited_at.elapsed();
    assert!(visibility_lag < lag_bound, "visibility lag {visibility_lag:?} out of bounds");

    // Both followers report tailing and the leader's exact catalog hash.
    let leader_hash = json_str_field(&get_health(leader.http), "catalog_hash").unwrap();
    for follower in [f1.http, f2.http] {
        wait_until("follower tails at leader hash", Duration::from_secs(10), || {
            let h = get_health(follower);
            json_str_field(&h, "catalog_hash").as_deref() == Some(leader_hash.as_str())
                && h.contains("\"state\":\"tailing\"")
                && h.contains("\"accepts_writes\":false")
        });
    }

    // Fact-inference rules are ordinary WAL records: a chained pair of
    // `infer:` rules plus a classification rule gated on the *second*
    // derived fact land on the leader in one POST…
    let created = lc
        .post_json(
            "/rulesets",
            "{\"infer\": \"has(isbn) => fact media = book\\nmedia == \\\"book\\\" => fact shelf = stacks\\n\", \
              \"expr\": \"shelf == \\\"stacks\\\" => books\\n\"}",
        )
        .unwrap();
    assert_eq!(created.status, 201, "{}", created.text());

    // …and every replica must produce the identical derived-fact decision.
    let book_item =
        "{\"title\": \"mystery volume\", \"attributes\": {\"ISBN\": \"9781234567890\"}}";
    let book_decision = |addr: SocketAddr| -> Option<String> {
        let mut c = http(addr);
        let r = c.post_json("/classify", book_item).expect("classify");
        assert_eq!(r.status, 200, "{}", r.text());
        json_str_field(&r.text().to_string(), "type")
    };
    for node in [leader.http, f1.http, f2.http] {
        wait_until("derived fact drives identical decisions", lag_bound, || {
            book_decision(node).as_deref() == Some("books")
        });
    }

    // The replication series ride the same /metrics endpoint as everything
    // else: the lag histogram and seq-delta gauge must be present in the
    // text exposition on a follower.
    let mut mc = http(f1.http);
    let metrics = mc.get("/metrics").expect("GET /metrics");
    assert_eq!(metrics.status, 200, "{}", metrics.text());
    let body = metrics.text();
    for series in ["rulekit_repl_seq_delta", "rulekit_repl_edit_visibility_lag_nanos"] {
        assert!(body.contains(series), "/metrics missing {series}:\n{body}");
    }

    // Kill follower 2 outright (SIGKILL — no graceful anything), land more
    // edits, restart it on the same directory: it must recover its WAL,
    // resync, and return to tailing with the leader's hash.
    f2.kill();
    for body in ["{\"rules\": \"sofas? -> sofas\\n\"}", "{\"rules\": \"rugs? -> area rugs\\n\"}"] {
        let r = lc.post_json("/rulesets", body).unwrap();
        assert_eq!(r.status, 201, "{}", r.text());
    }
    let mut f2 = NodeProc::spawn(&["follower", "--dir", &f2_dir, "--leader", &repl_addr]);
    let leader_hash = json_str_field(&get_health(leader.http), "catalog_hash").unwrap();
    wait_until("restarted follower reconverges", Duration::from_secs(15), || {
        let h = get_health(f2.http);
        json_str_field(&h, "catalog_hash").as_deref() == Some(leader_hash.as_str())
            && h.contains("\"state\":\"tailing\"")
    });
    // The recovered follower chains the replicated fact rules too.
    assert_eq!(book_decision(f2.http).as_deref(), Some("books"));

    // Kill the *leader* outright and restart it on the same directory: WAL
    // recovery must bring back the fact rules as source text, and the
    // revived leader must chain them identically.
    let pre_restart_hash = leader_hash;
    leader.kill();
    let mut leader = NodeProc::spawn(&["leader", "--dir", &leader_dir]);
    let health = get_health(leader.http);
    assert!(health.contains("\"role\":\"leader\""), "{health}");
    assert_eq!(
        json_str_field(&health, "catalog_hash").as_deref(),
        Some(pre_restart_hash.as_str()),
        "leader restart lost rules"
    );
    wait_until("restarted leader chains fact rules", Duration::from_secs(10), || {
        book_decision(leader.http).as_deref() == Some("books")
    });

    // A fresh follower of the revived leader receives the fact rules over
    // replication and produces the same derived-fact decision.
    let repl_addr = leader.repl.expect("restarted leader prints repl addr").to_string();
    let f3_dir = tmp_dir("f3");
    let mut f3 = NodeProc::spawn(&["follower", "--dir", &f3_dir, "--leader", &repl_addr]);
    wait_until("fresh follower converges on revived leader", Duration::from_secs(15), || {
        let h = get_health(f3.http);
        json_str_field(&h, "catalog_hash").as_deref() == Some(pre_restart_hash.as_str())
            && h.contains("\"state\":\"tailing\"")
    });
    assert_eq!(book_decision(f3.http).as_deref(), Some("books"));

    f1.stop();
    f2.stop();
    f3.stop();
    leader.stop();
    for dir in [leader_dir, f1_dir, f2_dir, f3_dir] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
