//! The serving-side classification contract. The service is generic over
//! [`RequestClassifier`] so tests can inject slow or deterministic fakes;
//! production uses [`rulekit_chimera::PipelineSnapshot`], which already is
//! an immutable, lock-free compiled pipeline.

use rulekit_chimera::{PipelineSnapshot, SnapshotDecision};
use rulekit_data::Product;

/// An immutable classifier a shard worker holds across requests. Must be
/// cheap to share (`Arc`) and safe to call from many threads at once.
pub trait RequestClassifier: Send + Sync {
    /// Monotone version of the compiled state — used to detect swaps and
    /// stamped onto every response for observability.
    fn version(&self) -> u64;

    /// Full-fidelity classification (rules + learning + voting).
    fn classify(&self, product: &Product) -> SnapshotDecision;

    /// Cheaper degraded classification used above the overload high-water
    /// mark. Default: same as `classify` (fakes that don't model cost can
    /// ignore degradation).
    fn classify_degraded(&self, product: &Product) -> SnapshotDecision {
        self.classify(product)
    }
}

impl RequestClassifier for PipelineSnapshot {
    fn version(&self) -> u64 {
        PipelineSnapshot::version(self)
    }

    fn classify(&self, product: &Product) -> SnapshotDecision {
        PipelineSnapshot::classify(self, product)
    }

    fn classify_degraded(&self, product: &Product) -> SnapshotDecision {
        PipelineSnapshot::classify_rules_only(self, product)
    }
}
