//! # rulekit-serve
//!
//! A hot-swappable, sharded rule-classification service — the serving tier
//! the paper's §2 production setting implies ("serve heavy traffic from
//! millions of users") for the rule machinery the rest of the workspace
//! builds.
//!
//! Architecture:
//!
//! - **Sharded worker pool** ([`RuleService`]): N workers, each with a
//!   bounded queue and its own `Arc` handle to the current compiled
//!   snapshot. The classification hot path takes no locks.
//! - **Lock-free hot swap**: a background refresher blocks on the rule
//!   repository's change signal, recompiles a [`PipelineSnapshot`] when
//!   analysts edit rules, and publishes it. Workers adopt it between
//!   micro-batches; in-flight requests finish on the old snapshot, so rule
//!   edits reach traffic within one rebuild interval with zero pauses —
//!   the §2.2 "fix the system *while* it continues serving" requirement.
//! - **Backpressure**: admission is [`Admission::Enqueued`] or
//!   [`Admission::Overloaded`] — a full service rejects instead of
//!   buffering unboundedly. Per-request deadlines shed stale queued work
//!   with an explicit [`ServeError::DeadlineExceeded`].
//! - **Graceful degradation**: above a queue high-water mark the service
//!   falls back from full Chimera voting to the cheaper rules-only path
//!   (and records that it did); hysteresis restores full fidelity once the
//!   backlog drains.
//! - **Pluggable execution engine**: snapshots compile through the
//!   pipeline's `ExecutorKind` (naive / trigram / Aho-Corasick
//!   literal-scan), set on `ChimeraConfig::executor`; the engine is a
//!   throughput knob only — responses are identical across kinds.
//! - **Built-in metrics** ([`ServiceMetrics`]): lock-free counters and a
//!   log-bucketed latency histogram — p50/p99, throughput inputs, queue
//!   depth, swap counts, candidates considered.
//! - **Durability** ([`DurableProvider`]): the main rule store can run on
//!   `rulekit-store`'s write-ahead log + checkpoints. A restarted service
//!   recovers its full rule set and rebuilds a compiled snapshot *before*
//!   admitting traffic; rule churn through the durable handle is persisted
//!   before it is acknowledged.
//! - **Explicit shutdown**: stopping the service completes every queued
//!   request with [`ServeError::ShuttingDown`] (counted in
//!   `shutdown_shed`) — callers blocked on a [`ResponseHandle`] never
//!   hang, backed by a fulfill-on-drop guarantee in the response channel.
//!
//! [`PipelineSnapshot`]: rulekit_chimera::PipelineSnapshot

pub mod classifier;
pub mod metrics;
pub mod provider;
pub mod queue;
pub mod response;
pub mod service;

pub use classifier::RequestClassifier;
pub use metrics::{MetricsReport, ServiceMetrics};
pub use provider::{ChimeraProvider, DurableProvider, SnapshotProvider, StaticProvider};
pub use queue::BoundedQueue;
pub use response::{Admission, ClassifyOutcome, ResponseHandle, ServeError};
pub use service::{RuleService, ServeConfig};
