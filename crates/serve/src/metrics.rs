//! Service observability over the shared `rulekit-obs` registry: lock-free
//! counters, per-shard queue-depth gauges, and log-linear latency
//! histograms, so the hot path never takes a lock to record.
//!
//! [`ServiceMetrics::report`] folds everything into the immutable
//! [`MetricsReport`] the experiments print; [`ServiceMetrics::render_text`]
//! emits the full Prometheus-style exposition (queue depths, shed counts,
//! latency quantiles) for scraping.

use rulekit_obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use std::sync::Arc;
use std::time::Duration;

/// All counters the service maintains. Shared (`Arc`) between the service,
/// its workers, and whoever wants to read a [`MetricsReport`]. Every handle
/// lives in the registry, so one text exposition covers the whole tier.
pub struct ServiceMetrics {
    registry: Arc<Registry>,
    /// Requests admitted into a shard queue.
    pub submitted: Counter,
    /// Requests classified and answered.
    pub completed: Counter,
    /// Requests rejected at admission (backpressure).
    pub overloaded: Counter,
    /// Admitted requests shed because their deadline passed while queued.
    pub deadline_shed: Counter,
    /// Admitted requests completed with [`ServeError::ShuttingDown`]
    /// because the service stopped before a worker classified them.
    ///
    /// [`ServeError::ShuttingDown`]: crate::response::ServeError::ShuttingDown
    pub shutdown_shed: Counter,
    /// Requests answered by the degraded (rules-only) path.
    pub degraded_served: Counter,
    /// Requests whose classification panicked (contained per-request).
    pub classifier_panics: Counter,
    /// Snapshot swaps published by the refresher.
    pub swaps: Counter,
    /// Sum of per-request rule candidates considered.
    pub candidates_total: Counter,
    /// High-water mark of total queued requests.
    pub max_queue_depth: Gauge,
    /// End-to-end latency (queue wait + classification) of completions,
    /// in nanoseconds.
    pub latency: Histogram,
    /// Snapshot build + publish latency (initial build, refresher swaps,
    /// and explicit `refresh_now` calls), in nanoseconds.
    pub snapshot_build_nanos: Histogram,
    /// Live queue depth per shard (`rulekit_serve_queue_depth{shard="i"}`).
    shard_depth: Vec<Gauge>,
}

impl ServiceMetrics {
    /// Metrics for a `shards`-wide service, in a registry of their own.
    pub fn new(shards: usize) -> Self {
        ServiceMetrics::with_registry(Arc::new(Registry::new()), shards)
    }

    /// Metrics registered in a caller-supplied `registry` (so serving,
    /// pipeline and store telemetry can share one exposition).
    pub fn with_registry(registry: Arc<Registry>, shards: usize) -> Self {
        ServiceMetrics {
            submitted: registry.counter("rulekit_serve_submitted_total"),
            completed: registry.counter("rulekit_serve_completed_total"),
            overloaded: registry.counter("rulekit_serve_overloaded_total"),
            deadline_shed: registry.counter("rulekit_serve_deadline_shed_total"),
            shutdown_shed: registry.counter("rulekit_serve_shutdown_shed_total"),
            degraded_served: registry.counter("rulekit_serve_degraded_served_total"),
            classifier_panics: registry.counter("rulekit_serve_classifier_panics_total"),
            swaps: registry.counter("rulekit_serve_snapshot_swaps_total"),
            candidates_total: registry.counter("rulekit_serve_candidates_total"),
            max_queue_depth: registry.gauge("rulekit_serve_queue_depth_max"),
            latency: registry.histogram("rulekit_serve_latency_nanos"),
            snapshot_build_nanos: registry.histogram("rulekit_serve_snapshot_build_nanos"),
            shard_depth: (0..shards)
                .map(|i| registry.gauge(&format!("rulekit_serve_queue_depth{{shard=\"{i}\"}}")))
                .collect(),
            registry,
        }
    }

    /// The registry the handles live in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The live queue-depth gauge of shard `i`.
    pub fn shard_depth(&self, i: usize) -> &Gauge {
        &self.shard_depth[i]
    }

    /// How many shards this service was built with.
    pub fn shard_count(&self) -> usize {
        self.shard_depth.len()
    }

    /// Live queue depth of every shard, in shard order (the `/health`
    /// endpoint's per-shard view).
    pub fn shard_depths(&self) -> Vec<i64> {
        self.shard_depth.iter().map(Gauge::value).collect()
    }

    pub(crate) fn note_queue_depth(&self, depth: u64) {
        self.max_queue_depth.set_max(depth.min(i64::MAX as u64) as i64);
    }

    /// A point-in-time snapshot of every registered serving metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Prometheus-style text exposition of the full serving metric family:
    /// per-shard queue depths, admission/shed/deadline counters, and the
    /// end-to-end latency summary.
    pub fn render_text(&self) -> String {
        self.registry.render_text()
    }

    /// An immutable snapshot of every counter plus derived quantities.
    pub fn report(&self) -> MetricsReport {
        let completed = self.completed.value();
        let latency = self.latency.snapshot();
        MetricsReport {
            submitted: self.submitted.value(),
            completed,
            overloaded: self.overloaded.value(),
            deadline_shed: self.deadline_shed.value(),
            shutdown_shed: self.shutdown_shed.value(),
            degraded_served: self.degraded_served.value(),
            classifier_panics: self.classifier_panics.value(),
            swaps: self.swaps.value(),
            max_queue_depth: self.max_queue_depth.value().max(0) as u64,
            avg_candidates: if completed == 0 {
                0.0
            } else {
                self.candidates_total.value() as f64 / completed as f64
            },
            p50: Duration::from_nanos(latency.quantile(0.50)),
            p90: Duration::from_nanos(latency.quantile(0.90)),
            p99: Duration::from_nanos(latency.quantile(0.99)),
            mean: Duration::from_nanos(latency.mean()),
        }
    }
}

/// Point-in-time counter snapshot with derived latency quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    pub submitted: u64,
    pub completed: u64,
    pub overloaded: u64,
    pub deadline_shed: u64,
    pub shutdown_shed: u64,
    pub degraded_served: u64,
    pub classifier_panics: u64,
    pub swaps: u64,
    pub max_queue_depth: u64,
    pub avg_candidates: f64,
    pub p50: Duration,
    pub p90: Duration,
    pub p99: Duration,
    pub mean: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_derives_avg_candidates() {
        let m = ServiceMetrics::new(2);
        m.completed.add(4);
        m.candidates_total.add(10);
        m.note_queue_depth(7);
        m.note_queue_depth(3);
        let r = m.report();
        assert_eq!(r.avg_candidates, 2.5);
        assert_eq!(r.max_queue_depth, 7);
    }

    #[test]
    fn latency_quantiles_are_conservative_and_ordered() {
        let m = ServiceMetrics::new(1);
        for micros in [10u64, 20, 40, 80, 5000, 100_000] {
            m.latency.record_duration(Duration::from_micros(micros));
        }
        let r = m.report();
        assert!(r.p50 >= Duration::from_micros(40), "p50 {:?}", r.p50);
        assert!(r.p99 >= Duration::from_micros(100_000), "p99 {:?}", r.p99);
        assert!(r.p50 <= r.p90 && r.p90 <= r.p99);
        assert!(r.mean >= Duration::from_micros(17_000));
    }

    #[test]
    fn empty_metrics_report_zero() {
        let m = ServiceMetrics::new(1);
        let r = m.report();
        assert_eq!(r.p99, Duration::ZERO);
        assert_eq!(r.mean, Duration::ZERO);
        assert_eq!(r.avg_candidates, 0.0);
    }

    #[test]
    fn shard_depth_gauges_render_with_labels() {
        let m = ServiceMetrics::new(3);
        m.shard_depth(0).inc();
        m.shard_depth(2).add(4);
        m.overloaded.inc();
        let text = m.render_text();
        assert!(text.contains("rulekit_serve_queue_depth{shard=\"0\"} 1"), "text:\n{text}");
        assert!(text.contains("rulekit_serve_queue_depth{shard=\"2\"} 4"), "text:\n{text}");
        assert!(text.contains("rulekit_serve_overloaded_total 1"), "text:\n{text}");
    }
}
