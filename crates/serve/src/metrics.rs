//! Built-in service observability: lock-free counters plus a log-bucketed
//! latency histogram, all plain atomics so the hot path never takes a lock
//! to record. `ServiceMetrics::report()` folds everything into an immutable
//! [`MetricsReport`] with the p50/p90/p99 quantiles the experiments print.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 64;

/// A histogram over power-of-two microsecond buckets: bucket `i` counts
/// latencies in `[2^(i-1), 2^i)` µs (bucket 0 = sub-microsecond). Quantile
/// estimates return the bucket's upper bound, so they are conservative
/// (never under-report) and within 2× of the true value.
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    total_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket(micros: u64) -> usize {
        (64 - micros.leading_zeros() as usize).min(BUCKETS - 1)
    }

    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::bucket(micros)].fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Conservative quantile estimate (`q` in `[0, 1]`): upper bound of the
    /// bucket containing the q-th sample.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                let upper = if i == 0 { 1 } else { 1u64 << i };
                return Duration::from_micros(upper);
            }
        }
        Duration::from_micros(u64::MAX)
    }

    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(self.total_micros.load(Ordering::Relaxed) / n)
    }
}

/// All counters the service maintains. Shared (`Arc`) between the service,
/// its workers, and whoever wants to read a [`MetricsReport`].
#[derive(Default)]
pub struct ServiceMetrics {
    /// Requests admitted into a shard queue.
    pub submitted: AtomicU64,
    /// Requests classified and answered.
    pub completed: AtomicU64,
    /// Requests rejected at admission (backpressure).
    pub overloaded: AtomicU64,
    /// Admitted requests shed because their deadline passed while queued.
    pub deadline_shed: AtomicU64,
    /// Admitted requests completed with [`ServeError::ShuttingDown`]
    /// because the service stopped before a worker classified them.
    ///
    /// [`ServeError::ShuttingDown`]: crate::response::ServeError::ShuttingDown
    pub shutdown_shed: AtomicU64,
    /// Requests answered by the degraded (rules-only) path.
    pub degraded_served: AtomicU64,
    /// Requests whose classification panicked (contained per-request).
    pub classifier_panics: AtomicU64,
    /// Snapshot swaps published by the refresher.
    pub swaps: AtomicU64,
    /// Sum of per-request rule candidates considered.
    pub candidates_total: AtomicU64,
    /// High-water mark of total queued requests.
    pub max_queue_depth: AtomicU64,
    /// End-to-end latency (queue wait + classification) of completions.
    pub latency: LatencyHistogram,
}

impl ServiceMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn note_queue_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// An immutable snapshot of every counter plus derived quantities.
    pub fn report(&self) -> MetricsReport {
        let completed = self.completed.load(Ordering::Relaxed);
        MetricsReport {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            overloaded: self.overloaded.load(Ordering::Relaxed),
            deadline_shed: self.deadline_shed.load(Ordering::Relaxed),
            shutdown_shed: self.shutdown_shed.load(Ordering::Relaxed),
            degraded_served: self.degraded_served.load(Ordering::Relaxed),
            classifier_panics: self.classifier_panics.load(Ordering::Relaxed),
            swaps: self.swaps.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            avg_candidates: if completed == 0 {
                0.0
            } else {
                self.candidates_total.load(Ordering::Relaxed) as f64 / completed as f64
            },
            p50: self.latency.quantile(0.50),
            p90: self.latency.quantile(0.90),
            p99: self.latency.quantile(0.99),
            mean: self.latency.mean(),
        }
    }
}

/// Point-in-time counter snapshot with derived latency quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    pub submitted: u64,
    pub completed: u64,
    pub overloaded: u64,
    pub deadline_shed: u64,
    pub shutdown_shed: u64,
    pub degraded_served: u64,
    pub classifier_panics: u64,
    pub swaps: u64,
    pub max_queue_depth: u64,
    pub avg_candidates: f64,
    pub p50: Duration,
    pub p90: Duration,
    pub p99: Duration,
    pub mean: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 1);
        assert_eq!(LatencyHistogram::bucket(2), 2);
        assert_eq!(LatencyHistogram::bucket(3), 2);
        assert_eq!(LatencyHistogram::bucket(1024), 11);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), 63);
    }

    #[test]
    fn quantiles_are_conservative_and_ordered() {
        let h = LatencyHistogram::new();
        for micros in [10u64, 20, 40, 80, 5000, 100_000] {
            h.record(Duration::from_micros(micros));
        }
        let (p50, p99) = (h.quantile(0.5), h.quantile(0.99));
        assert!(p50 >= Duration::from_micros(40), "p50 {p50:?}");
        assert!(p99 >= Duration::from_micros(100_000), "p99 {p99:?}");
        assert!(p50 <= p99);
        assert!(h.mean() >= Duration::from_micros(17_000));
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn report_derives_avg_candidates() {
        let m = ServiceMetrics::new();
        m.completed.store(4, Ordering::Relaxed);
        m.candidates_total.store(10, Ordering::Relaxed);
        m.note_queue_depth(7);
        m.note_queue_depth(3);
        let r = m.report();
        assert_eq!(r.avg_candidates, 2.5);
        assert_eq!(r.max_queue_depth, 7);
    }
}
