//! Snapshot providers: where fresh compiled classifiers come from. The
//! background refresher blocks on [`SnapshotProvider::wait_for_change`] and
//! republishes whenever the underlying rule state moves, which is what
//! makes analyst edits visible to in-flight traffic without a restart.

use crate::classifier::RequestClassifier;
use rulekit_chimera::Chimera;
use std::sync::Arc;
use std::time::Duration;

/// A source of compiled classifier snapshots plus a change signal.
pub trait SnapshotProvider: Send + Sync {
    /// Compiles the current state into an immutable classifier.
    fn build(&self) -> Arc<dyn RequestClassifier>;

    /// A monotone revision of the underlying state.
    fn revision(&self) -> u64;

    /// Blocks until `revision()` may exceed `last_seen`, or `timeout`
    /// elapses. Returns the current revision. May wake spuriously; callers
    /// must compare revisions themselves.
    fn wait_for_change(&self, last_seen: u64, timeout: Duration) -> u64;
}

/// Serves snapshots of a [`Chimera`] pipeline. Rule churn goes through the
/// pipeline's `Arc<RuleRepository>` handles (shared-reference APIs), so
/// analysts can keep editing while the service runs.
pub struct ChimeraProvider {
    chimera: Arc<Chimera>,
}

impl ChimeraProvider {
    pub fn new(chimera: Arc<Chimera>) -> Self {
        ChimeraProvider { chimera }
    }

    /// The wrapped pipeline (e.g. to reach its rule repositories).
    pub fn chimera(&self) -> &Arc<Chimera> {
        &self.chimera
    }
}

impl SnapshotProvider for ChimeraProvider {
    fn build(&self) -> Arc<dyn RequestClassifier> {
        Arc::new(self.chimera.snapshot())
    }

    fn revision(&self) -> u64 {
        self.chimera.gate_rules.revision() + self.chimera.rules.revision()
    }

    fn wait_for_change(&self, last_seen: u64, timeout: Duration) -> u64 {
        let current = self.revision();
        if current != last_seen {
            return current;
        }
        // Block on the main store's change signal (the gate store churns
        // rarely; its edits are picked up on the next wakeup at the latest).
        let main_seen = self.chimera.rules.revision();
        self.chimera.rules.wait_for_change(main_seen, timeout);
        self.revision()
    }
}

/// A provider over a fixed classifier — no churn, no change signal. Useful
/// for tests and benchmarks that want full control of the snapshot.
pub struct StaticProvider {
    classifier: Arc<dyn RequestClassifier>,
}

impl StaticProvider {
    pub fn new(classifier: Arc<dyn RequestClassifier>) -> Self {
        StaticProvider { classifier }
    }
}

impl SnapshotProvider for StaticProvider {
    fn build(&self) -> Arc<dyn RequestClassifier> {
        self.classifier.clone()
    }

    fn revision(&self) -> u64 {
        self.classifier.version()
    }

    fn wait_for_change(&self, _last_seen: u64, timeout: Duration) -> u64 {
        std::thread::sleep(timeout);
        self.revision()
    }
}
