//! Snapshot providers: where fresh compiled classifiers come from. The
//! background refresher blocks on [`SnapshotProvider::wait_for_change`] and
//! republishes whenever the underlying rule state moves, which is what
//! makes analyst edits visible to in-flight traffic without a restart.

use crate::classifier::RequestClassifier;
use rulekit_chimera::Chimera;
use std::sync::Arc;
use std::time::Duration;

/// A source of compiled classifier snapshots plus a change signal.
pub trait SnapshotProvider: Send + Sync {
    /// Compiles the current state into an immutable classifier.
    fn build(&self) -> Arc<dyn RequestClassifier>;

    /// A monotone revision of the underlying state.
    fn revision(&self) -> u64;

    /// Blocks until `revision()` may exceed `last_seen`, or `timeout`
    /// elapses. Returns the current revision. May wake spuriously; callers
    /// must compare revisions themselves.
    fn wait_for_change(&self, last_seen: u64, timeout: Duration) -> u64;
}

/// Serves snapshots of a [`Chimera`] pipeline. Rule churn goes through the
/// pipeline's `Arc<RuleRepository>` handles (shared-reference APIs), so
/// analysts can keep editing while the service runs.
pub struct ChimeraProvider {
    chimera: Arc<Chimera>,
}

impl ChimeraProvider {
    pub fn new(chimera: Arc<Chimera>) -> Self {
        ChimeraProvider { chimera }
    }

    /// The wrapped pipeline (e.g. to reach its rule repositories).
    pub fn chimera(&self) -> &Arc<Chimera> {
        &self.chimera
    }
}

impl SnapshotProvider for ChimeraProvider {
    fn build(&self) -> Arc<dyn RequestClassifier> {
        Arc::new(self.chimera.snapshot())
    }

    fn revision(&self) -> u64 {
        self.chimera.gate_rules.revision() + self.chimera.rules.revision()
    }

    fn wait_for_change(&self, last_seen: u64, timeout: Duration) -> u64 {
        let current = self.revision();
        if current != last_seen {
            return current;
        }
        // Block on the main store's change signal (the gate store churns
        // rarely; its edits are picked up on the next wakeup at the latest).
        let main_seen = self.chimera.rules.revision();
        self.chimera.rules.wait_for_change(main_seen, timeout);
        self.revision()
    }
}

/// A [`ChimeraProvider`] whose main rule store is durable: rules recover
/// from checkpoint + write-ahead log *before* the first snapshot is built,
/// so a restarted service re-admits traffic with its full pre-crash rule
/// set, and every subsequent mutation made through
/// [`DurableProvider::store`] is persisted before it is acknowledged.
///
/// Construction order is the durability contract: [`DurableProvider::open`]
/// runs recovery into `chimera.rules` first; [`crate::RuleService::start`]
/// then builds the initial [`PipelineSnapshot`] synchronously — traffic can
/// never observe an empty post-restart rule set.
///
/// [`PipelineSnapshot`]: rulekit_chimera::PipelineSnapshot
pub struct DurableProvider {
    inner: ChimeraProvider,
    store: Arc<rulekit_store::DurableRepository>,
}

impl DurableProvider {
    /// Recovers durable state from `storage` into `chimera`'s main rule
    /// store, then wraps the pipeline as a snapshot provider. Uses the
    /// pipeline's own parser, so dictionary-based rules resolve exactly as
    /// they did when first added (register dictionaries before calling).
    pub fn open(
        chimera: Arc<Chimera>,
        storage: Arc<dyn rulekit_store::Storage>,
        config: rulekit_store::DurableConfig,
    ) -> Result<DurableProvider, rulekit_store::StoreError> {
        let parser = chimera.parser().clone();
        let store = Arc::new(rulekit_store::DurableRepository::open_into(
            chimera.rules.clone(),
            storage,
            parser,
            config,
        )?);
        Ok(DurableProvider { inner: ChimeraProvider::new(chimera), store })
    }

    /// The durable mutation handle. Rule churn during serving must go
    /// through this (not the raw repository) to be crash-safe; the
    /// refresher picks up changes exactly as with a plain
    /// [`ChimeraProvider`].
    pub fn store(&self) -> &Arc<rulekit_store::DurableRepository> {
        &self.store
    }

    /// The wrapped pipeline.
    pub fn chimera(&self) -> &Arc<Chimera> {
        self.inner.chimera()
    }

    /// What recovery found when the provider opened.
    pub fn recovery(&self) -> &rulekit_store::RecoveryReport {
        self.store.recovery()
    }
}

impl SnapshotProvider for DurableProvider {
    fn build(&self) -> Arc<dyn RequestClassifier> {
        self.inner.build()
    }

    fn revision(&self) -> u64 {
        self.inner.revision()
    }

    fn wait_for_change(&self, last_seen: u64, timeout: Duration) -> u64 {
        self.inner.wait_for_change(last_seen, timeout)
    }
}

/// A provider over a fixed classifier — no churn, no change signal. Useful
/// for tests and benchmarks that want full control of the snapshot.
pub struct StaticProvider {
    classifier: Arc<dyn RequestClassifier>,
}

impl StaticProvider {
    pub fn new(classifier: Arc<dyn RequestClassifier>) -> Self {
        StaticProvider { classifier }
    }
}

impl SnapshotProvider for StaticProvider {
    fn build(&self) -> Arc<dyn RequestClassifier> {
        self.classifier.clone()
    }

    fn revision(&self) -> u64 {
        self.classifier.version()
    }

    fn wait_for_change(&self, _last_seen: u64, timeout: Duration) -> u64 {
        std::thread::sleep(timeout);
        self.revision()
    }
}
