//! A bounded MPSC queue per shard: `Mutex<VecDeque>` + `Condvar`, with
//! non-blocking admission (`try_push`) and micro-batched consumption
//! (`pop_batch`). Admission failure is the backpressure signal — callers
//! translate a full queue into [`crate::response::Admission::Overloaded`]
//! instead of blocking the producer.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded queue. `try_push` never blocks; `pop_batch` blocks (with a
/// timeout) for the first item, then drains up to the batch limit without
/// further waiting — the micro-batch a shard worker processes per wakeup.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    nonempty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State { items: VecDeque::with_capacity(capacity), closed: false }),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item` unless the queue is full or closed; on rejection the
    /// item is handed back so the caller can fail it explicitly.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.closed || st.items.len() >= self.capacity {
            return Err(item);
        }
        st.items.push_back(item);
        drop(st);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Waits up to `timeout` for at least one item, then drains up to `max`
    /// items. An empty result means the wait timed out (or the queue is
    /// closed and drained — check [`BoundedQueue::is_closed`]).
    pub fn pop_batch(&self, max: usize, timeout: Duration) -> Vec<T> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.items.is_empty() && !st.closed {
            let (guard, _) = self
                .nonempty
                .wait_timeout_while(st, timeout, |s| s.items.is_empty() && !s.closed)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
        let take = st.items.len().min(max.max(1));
        st.items.drain(..take).collect()
    }

    /// Current depth (racy by nature; used for watermarks and metrics).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: future pushes fail, blocked consumers wake. Items
    /// already queued remain poppable so shutdown can drain gracefully.
    pub fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.nonempty.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_roundtrip() {
        let q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert_eq!(q.try_push(99), Err(99), "full queue rejects");
        assert_eq!(q.pop_batch(3, Duration::from_millis(1)), vec![0, 1, 2]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_batch_times_out_empty() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        assert!(q.pop_batch(8, Duration::from_millis(5)).is_empty());
    }

    #[test]
    fn close_wakes_and_rejects() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(8));
        // Queued item still drains after close.
        assert_eq!(q.pop_batch(8, Duration::from_secs(1)), vec![7]);
        assert!(q.is_closed());
        assert!(q.pop_batch(8, Duration::from_secs(1)).is_empty());
    }

    #[test]
    fn blocked_consumer_wakes_on_push() {
        use std::sync::Arc;
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop_batch(1, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42).unwrap();
        assert_eq!(h.join().unwrap(), vec![42]);
    }
}
