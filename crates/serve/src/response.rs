//! Request admission and response plumbing: the `Enqueued`/`Overloaded`
//! admission verdict and a tiny one-shot channel (`Mutex` + `Condvar`) the
//! worker uses to deliver each request's outcome.

use rulekit_chimera::Decision;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A served classification, annotated with serving metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifyOutcome {
    /// The pipeline's decision.
    pub decision: Decision,
    /// Rule candidates the executors considered for this request.
    pub candidates: usize,
    /// Whether the degraded (rules-only) path served this request.
    pub degraded: bool,
    /// Version of the snapshot that served the request.
    pub snapshot_version: u64,
    /// Queue wait + classification time.
    pub latency: Duration,
}

/// Why a request that was admitted did not produce a classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request's deadline passed before a worker got to it; it was shed
    /// from the queue without being classified.
    DeadlineExceeded,
    /// The service shut down before the request was processed.
    ShuttingDown,
    /// The classifier panicked on this request; the panic was contained to
    /// the request (the shard worker keeps serving).
    ClassifierPanicked(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded while queued"),
            ServeError::ShuttingDown => write!(f, "service shutting down"),
            ServeError::ClassifierPanicked(msg) => write!(f, "classifier panicked: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

type SlotResult = Result<ClassifyOutcome, ServeError>;

struct Shared {
    result: Mutex<Option<SlotResult>>,
    ready: Condvar,
}

/// Producer half of the one-shot response channel (held by the queue/worker).
///
/// Liveness guarantee: if the slot is dropped without being fulfilled (a
/// request discarded at shutdown, a queue dropped mid-flight, a worker path
/// that forgot to answer), `Drop` delivers [`ServeError::ShuttingDown`] —
/// a caller blocked on the handle can never hang forever.
pub(crate) struct ResponseSlot {
    shared: Arc<Shared>,
}

impl ResponseSlot {
    pub(crate) fn fulfill(self, result: SlotResult) {
        self.set(result);
    }

    /// First write wins; later writes (including the `Drop` fallback after
    /// a normal `fulfill`) are no-ops.
    fn set(&self, result: SlotResult) {
        let mut guard = self.shared.result.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            *guard = Some(result);
            drop(guard);
            self.shared.ready.notify_all();
        }
    }
}

impl Drop for ResponseSlot {
    fn drop(&mut self) {
        self.set(Err(ServeError::ShuttingDown));
    }
}

/// Consumer half: what the submitting client blocks on.
pub struct ResponseHandle {
    shared: Arc<Shared>,
}

impl ResponseHandle {
    /// Blocks until the worker delivers the outcome.
    pub fn wait(self) -> SlotResult {
        let mut guard = self.shared.result.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self.shared.ready.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Waits up to `timeout`; `None` means the result is not ready yet.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<SlotResult> {
        let guard = self.shared.result.lock().unwrap_or_else(|e| e.into_inner());
        let (mut guard, _) = self
            .shared
            .ready
            .wait_timeout_while(guard, timeout, |r| r.is_none())
            .unwrap_or_else(|e| e.into_inner());
        guard.take()
    }
}

pub(crate) fn response_channel() -> (ResponseSlot, ResponseHandle) {
    let shared = Arc::new(Shared { result: Mutex::new(None), ready: Condvar::new() });
    (ResponseSlot { shared: shared.clone() }, ResponseHandle { shared })
}

/// The service's answer to a submission attempt. `Overloaded` is the
/// backpressure signal: every shard queue the request was offered to was at
/// capacity (or the service is shutting down), and the caller should back
/// off or retry later.
pub enum Admission {
    /// Admitted; block on the handle for the outcome.
    Enqueued(ResponseHandle),
    /// Rejected at admission — nothing was queued.
    Overloaded,
}

impl Admission {
    /// Unwraps the handle, panicking on `Overloaded` (test convenience).
    pub fn expect_enqueued(self) -> ResponseHandle {
        match self {
            Admission::Enqueued(h) => h,
            Admission::Overloaded => panic!("request rejected: overloaded"),
        }
    }

    pub fn is_overloaded(&self) -> bool {
        matches!(self, Admission::Overloaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oneshot_delivers_across_threads() {
        let (slot, handle) = response_channel();
        let h = std::thread::spawn(move || handle.wait());
        std::thread::sleep(Duration::from_millis(10));
        slot.fulfill(Err(ServeError::ShuttingDown));
        assert_eq!(h.join().unwrap(), Err(ServeError::ShuttingDown));
    }

    #[test]
    fn dropped_slot_resolves_waiters_with_shutdown() {
        let (slot, handle) = response_channel();
        let h = std::thread::spawn(move || handle.wait());
        std::thread::sleep(Duration::from_millis(10));
        drop(slot); // never fulfilled — e.g. discarded during shutdown
        assert_eq!(h.join().unwrap(), Err(ServeError::ShuttingDown));
    }

    #[test]
    fn fulfill_wins_over_drop_fallback() {
        let (slot, handle) = response_channel();
        slot.fulfill(Err(ServeError::DeadlineExceeded));
        // Drop ran right after fulfill; the first write must stand.
        assert_eq!(handle.wait(), Err(ServeError::DeadlineExceeded));
    }

    #[test]
    fn wait_timeout_reports_not_ready() {
        let (slot, handle) = response_channel();
        assert!(handle.wait_timeout(Duration::from_millis(5)).is_none());
        slot.fulfill(Err(ServeError::DeadlineExceeded));
        assert_eq!(
            handle.wait_timeout(Duration::from_millis(100)),
            Some(Err(ServeError::DeadlineExceeded))
        );
    }
}
