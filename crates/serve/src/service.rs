//! The worker-pool service: N shard workers, each holding its own `Arc` to
//! the current compiled snapshot (zero locks on the classification hot
//! path), a background refresher that republishes snapshots when the rule
//! state changes, bounded per-shard queues with `Enqueued`/`Overloaded`
//! admission, per-request deadlines, and rules-only degradation above the
//! overload high-water mark.

use crate::classifier::RequestClassifier;
use crate::metrics::{MetricsReport, ServiceMetrics};
use crate::provider::SnapshotProvider;
use crate::queue::BoundedQueue;
use crate::response::{response_channel, Admission, ClassifyOutcome, ResponseSlot, ServeError};
use rulekit_data::Product;
use rulekit_obs::SpanTimer;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Shard workers (each owns one queue and one snapshot handle).
    pub shards: usize,
    /// Bounded capacity of each shard's queue; admission beyond it (after
    /// trying every shard) is `Overloaded`.
    pub queue_capacity: usize,
    /// Micro-batch: maximum requests a worker drains per queue lock.
    pub batch_size: usize,
    /// Total queued requests at/above which the service degrades to the
    /// rules-only path.
    pub high_water: usize,
    /// Total queued requests at/below which full-fidelity serving resumes
    /// (hysteresis; must be < `high_water`).
    pub low_water: usize,
    /// Deadline applied to requests submitted without an explicit one.
    pub default_deadline: Option<Duration>,
    /// Upper bound on how long the refresher sleeps between change checks;
    /// rule edits are typically visible much sooner (the repository signals
    /// its condvar on every mutation).
    pub refresh_interval: Duration,
    /// How long an idle worker waits for work before rechecking state.
    pub worker_poll: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_capacity: 256,
            batch_size: 32,
            high_water: 512,
            low_water: 128,
            default_deadline: None,
            refresh_interval: Duration::from_millis(25),
            worker_poll: Duration::from_millis(20),
        }
    }
}

struct QueuedRequest {
    product: Product,
    enqueued_at: Instant,
    deadline: Option<Instant>,
    slot: ResponseSlot,
}

struct Inner {
    cfg: ServeConfig,
    queues: Vec<BoundedQueue<QueuedRequest>>,
    /// Total requests sitting in queues (watermark bookkeeping). Signed:
    /// submit-side increments and worker-side decrements race benignly, so
    /// the value can dip below zero for an instant.
    queued: AtomicI64,
    /// The published snapshot; workers re-read it only when `swap_count`
    /// moves, so steady-state classification touches no lock.
    latest: RwLock<Arc<dyn RequestClassifier>>,
    swap_count: AtomicU64,
    degraded: AtomicBool,
    shutdown: AtomicBool,
    metrics: Arc<ServiceMetrics>,
    round_robin: AtomicUsize,
}

impl Inner {
    fn publish(&self, snapshot: Arc<dyn RequestClassifier>) {
        *self.latest.write().unwrap_or_else(|e| e.into_inner()) = snapshot;
        self.swap_count.fetch_add(1, Ordering::Release);
        self.metrics.swaps.inc();
    }

    /// `provider.build()` with the build latency recorded.
    fn timed_build(&self, provider: &dyn SnapshotProvider) -> Arc<dyn RequestClassifier> {
        let span = SpanTimer::start(&self.metrics.snapshot_build_nanos);
        let snapshot = provider.build();
        span.finish();
        snapshot
    }

    fn current(&self) -> Arc<dyn RequestClassifier> {
        self.latest.read().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// A running classification service. Dropping it shuts down gracefully:
/// queued requests are completed with an explicit
/// [`ServeError::ShuttingDown`] outcome and all threads are joined.
pub struct RuleService {
    inner: Arc<Inner>,
    provider: Arc<dyn SnapshotProvider>,
    workers: Vec<JoinHandle<()>>,
    refresher: Option<JoinHandle<()>>,
}

impl RuleService {
    /// Builds the initial snapshot synchronously, then starts the shard
    /// workers and the background refresher.
    pub fn start(provider: Arc<dyn SnapshotProvider>, cfg: ServeConfig) -> RuleService {
        let shards = cfg.shards;
        RuleService::start_with_metrics(provider, cfg, Arc::new(ServiceMetrics::new(shards)))
    }

    /// Like [`RuleService::start`] but registers the service's metrics in a
    /// caller-supplied registry, so one `/metrics` exposition can cover the
    /// serving tier together with the store and any network front-end.
    pub fn start_with_registry(
        provider: Arc<dyn SnapshotProvider>,
        cfg: ServeConfig,
        registry: Arc<rulekit_obs::Registry>,
    ) -> RuleService {
        let shards = cfg.shards;
        let metrics = Arc::new(ServiceMetrics::with_registry(registry, shards));
        RuleService::start_with_metrics(provider, cfg, metrics)
    }

    fn start_with_metrics(
        provider: Arc<dyn SnapshotProvider>,
        cfg: ServeConfig,
        metrics: Arc<ServiceMetrics>,
    ) -> RuleService {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.low_water < cfg.high_water, "hysteresis requires low_water < high_water");
        let initial = {
            let span = SpanTimer::start(&metrics.snapshot_build_nanos);
            let snapshot = provider.build();
            span.finish();
            snapshot
        };
        let inner = Arc::new(Inner {
            queues: (0..cfg.shards).map(|_| BoundedQueue::new(cfg.queue_capacity)).collect(),
            queued: AtomicI64::new(0),
            latest: RwLock::new(initial),
            swap_count: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            metrics,
            round_robin: AtomicUsize::new(0),
            cfg,
        });

        let workers = (0..inner.cfg.shards)
            .map(|shard| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("rulekit-serve-{shard}"))
                    .spawn(move || worker_loop(&inner, shard))
                    .expect("spawn shard worker")
            })
            .collect();

        let refresher = {
            let inner = inner.clone();
            let provider = provider.clone();
            std::thread::Builder::new()
                .name("rulekit-serve-refresh".into())
                .spawn(move || refresher_loop(&inner, provider.as_ref()))
                .expect("spawn refresher")
        };

        RuleService { inner, provider, workers, refresher: Some(refresher) }
    }

    /// Submits with the config's default deadline.
    pub fn submit(&self, product: Product) -> Admission {
        self.submit_with_deadline(product, self.inner.cfg.default_deadline)
    }

    /// Offers the request to every shard queue starting from a round-robin
    /// cursor; if all are full (or the service is shutting down) the caller
    /// gets `Overloaded` and nothing is queued.
    pub fn submit_with_deadline(&self, product: Product, deadline: Option<Duration>) -> Admission {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::Acquire) {
            inner.metrics.overloaded.inc();
            return Admission::Overloaded;
        }
        let now = Instant::now();
        let (slot, handle) = response_channel();
        let mut request =
            QueuedRequest { product, enqueued_at: now, deadline: deadline.map(|d| now + d), slot };
        let shards = inner.cfg.shards;
        let start = inner.round_robin.fetch_add(1, Ordering::Relaxed);
        for k in 0..shards {
            let shard = (start + k) % shards;
            match inner.queues[shard].try_push(request) {
                Ok(()) => {
                    inner.metrics.submitted.inc();
                    inner.metrics.shard_depth(shard).inc();
                    let depth = (inner.queued.fetch_add(1, Ordering::Relaxed) + 1).max(0) as usize;
                    inner.metrics.note_queue_depth(depth as u64);
                    if depth >= inner.cfg.high_water {
                        inner.degraded.store(true, Ordering::Relaxed);
                    }
                    return Admission::Enqueued(handle);
                }
                Err(rejected) => request = rejected,
            }
        }
        inner.metrics.overloaded.inc();
        Admission::Overloaded
    }

    /// Rebuilds and publishes a snapshot right now, bypassing the
    /// refresher's change wait. Returns the new snapshot version.
    pub fn refresh_now(&self) -> u64 {
        let snapshot = self.inner.timed_build(self.provider.as_ref());
        let version = snapshot.version();
        self.inner.publish(snapshot);
        version
    }

    /// Version of the currently published snapshot.
    pub fn snapshot_version(&self) -> u64 {
        self.inner.current().version()
    }

    /// Number of snapshot swaps published so far.
    pub fn swap_count(&self) -> u64 {
        self.inner.swap_count.load(Ordering::Acquire)
    }

    /// Whether the service is currently in rules-only degradation.
    pub fn is_degraded(&self) -> bool {
        self.inner.degraded.load(Ordering::Relaxed)
    }

    /// Total requests currently queued across shards.
    pub fn queue_depth(&self) -> usize {
        self.inner.queued.load(Ordering::Relaxed).max(0) as usize
    }

    /// Current metrics snapshot.
    pub fn metrics(&self) -> MetricsReport {
        self.inner.metrics.report()
    }

    /// The live metric handles (per-shard gauges, histograms, registry).
    pub fn service_metrics(&self) -> &Arc<ServiceMetrics> {
        &self.inner.metrics
    }

    /// Prometheus-style text exposition of the serving tier: per-shard
    /// queue depths, admission/shed/deadline outcome counters, snapshot
    /// build timings, and the end-to-end latency summary.
    pub fn render_metrics(&self) -> String {
        self.inner.metrics.render_text()
    }

    /// Stops admission and completes every queued request with an explicit
    /// [`ServeError::ShuttingDown`] outcome (counted in `shutdown_shed`),
    /// then joins all threads. No caller blocked on a handle is ever left
    /// hanging: workers shed their remaining queue contents, and the
    /// [`ResponseSlot`] drop guarantee backstops any request discarded on
    /// an unexpected path. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for q in &self.inner.queues {
            q.close();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.refresher.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RuleService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn refresher_loop(inner: &Inner, provider: &dyn SnapshotProvider) {
    let mut last_seen = provider.revision();
    while !inner.shutdown.load(Ordering::Acquire) {
        let now = provider.wait_for_change(last_seen, inner.cfg.refresh_interval);
        if inner.shutdown.load(Ordering::Acquire) {
            break;
        }
        if now != last_seen {
            let snapshot = inner.timed_build(provider);
            inner.publish(snapshot);
            last_seen = now;
        }
    }
}

fn worker_loop(inner: &Inner, shard: usize) {
    let queue = &inner.queues[shard];
    let mut snapshot = inner.current();
    let mut seen_swap = inner.swap_count.load(Ordering::Acquire);

    loop {
        let batch = queue.pop_batch(inner.cfg.batch_size, inner.cfg.worker_poll);
        if batch.is_empty() {
            if queue.is_closed() {
                break;
            }
            continue;
        }
        let n = batch.len() as i64;
        inner.metrics.shard_depth(shard).add(-n);
        let depth = (inner.queued.fetch_sub(n, Ordering::Relaxed) - n).max(0) as usize;
        if depth <= inner.cfg.low_water {
            inner.degraded.store(false, Ordering::Relaxed);
        }

        // Shutdown: shed remaining queued work with an explicit outcome
        // instead of classifying it — callers unblock immediately and can
        // tell "shut down" from "served".
        if inner.shutdown.load(Ordering::Acquire) {
            for request in batch {
                inner.metrics.shutdown_shed.inc();
                request.slot.fulfill(Err(ServeError::ShuttingDown));
            }
            continue;
        }

        // Hot swap: adopt a newly published snapshot between micro-batches;
        // requests already being classified finish on the old one.
        let swap = inner.swap_count.load(Ordering::Acquire);
        if swap != seen_swap {
            snapshot = inner.current();
            seen_swap = swap;
        }

        for request in batch {
            serve_one(inner, snapshot.as_ref(), request);
        }
    }
}

fn serve_one(inner: &Inner, snapshot: &dyn RequestClassifier, request: QueuedRequest) {
    let metrics = &inner.metrics;
    if let Some(deadline) = request.deadline {
        if Instant::now() > deadline {
            metrics.deadline_shed.inc();
            request.slot.fulfill(Err(ServeError::DeadlineExceeded));
            return;
        }
    }
    let degrade = inner.degraded.load(Ordering::Relaxed);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if degrade {
            snapshot.classify_degraded(&request.product)
        } else {
            snapshot.classify(&request.product)
        }
    }));
    match outcome {
        Ok(decided) => {
            metrics.completed.inc();
            metrics.candidates_total.add(decided.candidates as u64);
            if decided.degraded {
                metrics.degraded_served.inc();
            }
            let latency = request.enqueued_at.elapsed();
            metrics.latency.record_duration(latency);
            request.slot.fulfill(Ok(ClassifyOutcome {
                decision: decided.decision,
                candidates: decided.candidates,
                degraded: decided.degraded,
                snapshot_version: snapshot.version(),
                latency,
            }));
        }
        Err(payload) => {
            metrics.classifier_panics.inc();
            let message = panic_text(payload.as_ref());
            request.slot.fulfill(Err(ServeError::ClassifierPanicked(message)));
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "classifier panicked".to_string()
    }
}
