//! Integration tests for the serving tier: each headline feature — hot
//! swap, backpressure, deadline shedding, degradation, panic containment,
//! graceful shutdown — is exercised end to end against either a fake
//! classifier (to control cost) or a real Chimera pipeline.

use rulekit_chimera::{Chimera, ChimeraConfig, Decision, SnapshotDecision};
use rulekit_data::{Product, Taxonomy, TypeId, VendorId};
use rulekit_serve::{
    Admission, ChimeraProvider, DurableProvider, RequestClassifier, RuleService, ServeConfig,
    ServeError, SnapshotProvider, StaticProvider,
};
use rulekit_store::{DurableConfig, MemStorage, Storage};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn product(title: &str) -> Product {
    Product {
        id: 0,
        title: title.into(),
        description: String::new(),
        attributes: Vec::new(),
        vendor: VendorId(0),
    }
}

/// A classifier with a configurable per-request cost, so tests can saturate
/// tiny queues deterministically.
struct SlowClassifier {
    version: u64,
    delay: Duration,
    ty: TypeId,
}

impl RequestClassifier for SlowClassifier {
    fn version(&self) -> u64 {
        self.version
    }

    fn classify(&self, product: &Product) -> SnapshotDecision {
        if product.title == "poison" {
            panic!("poisoned request");
        }
        std::thread::sleep(self.delay);
        SnapshotDecision {
            decision: Decision::Classified {
                ty: self.ty,
                confidence: 1.0,
                explanation: vec!["fake".into()],
            },
            candidates: 3,
            degraded: false,
        }
    }

    fn classify_degraded(&self, _product: &Product) -> SnapshotDecision {
        // The degraded path is intentionally instant: degradation should
        // visibly cut per-request cost.
        SnapshotDecision {
            decision: Decision::Classified {
                ty: self.ty,
                confidence: 0.5,
                explanation: vec!["fake degraded".into()],
            },
            candidates: 1,
            degraded: true,
        }
    }
}

fn slow_service(delay: Duration, cfg: ServeConfig) -> RuleService {
    let classifier = Arc::new(SlowClassifier { version: 1, delay, ty: TypeId(7) });
    RuleService::start(Arc::new(StaticProvider::new(classifier)), cfg)
}

fn ruled_chimera() -> Arc<Chimera> {
    let tax = Taxonomy::builtin();
    let chimera = Chimera::new(tax, ChimeraConfig::default());
    chimera.add_rules("rings? -> rings\n").unwrap();
    Arc::new(chimera)
}

#[test]
fn serves_identically_under_every_executor_kind() {
    // The ExecutorKind knob on ChimeraConfig flows through snapshot
    // compilation into the serving tier; responses must not depend on it.
    use rulekit_core::ExecutorKind;
    let titles =
        ["diamond wedding ring", "garden hose", "padded laptop sleeve", "braided area rug"];
    let mut per_kind: Vec<Vec<Option<TypeId>>> = Vec::new();
    for executor in [ExecutorKind::Naive, ExecutorKind::Trigram, ExecutorKind::LiteralScan] {
        let tax = Taxonomy::builtin();
        let chimera = Chimera::new(tax, ChimeraConfig { executor, ..Default::default() });
        chimera.add_rules("rings? -> rings\n(area|oriental|braided) rugs? -> area rugs\n").unwrap();
        let provider = Arc::new(ChimeraProvider::new(Arc::new(chimera)));
        let mut service =
            RuleService::start(provider, ServeConfig { shards: 2, ..Default::default() });
        let answers: Vec<Option<TypeId>> = titles
            .iter()
            .map(|t| {
                service
                    .submit(product(t))
                    .expect_enqueued()
                    .wait()
                    .map(|o| o.decision.type_id())
                    .unwrap_or(None)
            })
            .collect();
        service.shutdown();
        per_kind.push(answers);
    }
    assert_eq!(per_kind[0], per_kind[1], "naive vs trigram");
    assert_eq!(per_kind[0], per_kind[2], "naive vs literal-scan");
}

#[test]
fn serves_real_pipeline_end_to_end() {
    let chimera = ruled_chimera();
    let rings = chimera.taxonomy().id_of("rings").unwrap();
    let provider = Arc::new(ChimeraProvider::new(chimera));
    let service = RuleService::start(provider, ServeConfig { shards: 2, ..Default::default() });

    let outcome = service
        .submit(product("diamond wedding ring"))
        .expect_enqueued()
        .wait()
        .expect("classified");
    assert_eq!(outcome.decision.type_id(), Some(rings));
    assert!(outcome.candidates >= 1);
    assert!(!outcome.degraded);

    let report = service.metrics();
    assert_eq!(report.submitted, 1);
    assert_eq!(report.completed, 1);
    assert!(report.p50 > Duration::ZERO);
}

/// The tentpole guarantee: a rule added while the service is running under
/// load becomes visible to responses without stopping or pausing serving.
#[test]
fn hot_swap_makes_rule_edits_visible_without_stopping() {
    let chimera = ruled_chimera();
    let sofas = chimera.taxonomy().id_of("sofas").unwrap();
    let provider = Arc::new(ChimeraProvider::new(chimera.clone()));
    let service = RuleService::start(
        provider,
        ServeConfig {
            shards: 2,
            refresh_interval: Duration::from_millis(10),
            ..Default::default()
        },
    );

    // Before the edit: a sofa title has no matching rule → declined.
    let before = service.submit(product("leather sofa")).expect_enqueued().wait().expect("served");
    assert!(before.decision.is_declined());
    let version_before = before.snapshot_version;

    // Analyst adds a rule through the live repository handle. No service
    // API is involved — the refresher notices the revision change.
    chimera.add_rules("sofas? -> sofas\n").unwrap();

    // Keep submitting (traffic never stops); the new rule must become
    // visible within a rebuild interval.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut swapped_outcome = None;
    while Instant::now() < deadline {
        let outcome = service
            .submit(product("leather sofa"))
            .expect_enqueued()
            .wait()
            .expect("service must keep serving during the swap");
        if outcome.decision.type_id() == Some(sofas) {
            swapped_outcome = Some(outcome);
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let outcome = swapped_outcome.expect("rule edit never became visible");
    assert!(outcome.snapshot_version > version_before, "must be served by a newer snapshot");
    assert!(service.swap_count() >= 1);
    assert!(service.metrics().swaps >= 1);
}

#[test]
fn saturation_yields_overloaded_admission() {
    let service = slow_service(
        Duration::from_millis(5),
        ServeConfig {
            shards: 1,
            queue_capacity: 4,
            high_water: 100, // out of the way: this test isolates admission
            low_water: 1,
            ..Default::default()
        },
    );

    let mut handles = Vec::new();
    let mut overloaded = 0usize;
    for i in 0..200 {
        match service.submit(product(&format!("item {i}"))) {
            Admission::Enqueued(h) => handles.push(h),
            Admission::Overloaded => overloaded += 1,
        }
    }
    assert!(overloaded > 0, "bounded queue must reject under saturation");
    assert_eq!(service.metrics().overloaded, overloaded as u64);
    for h in handles {
        h.wait().expect("admitted requests still complete");
    }
    assert_eq!(service.metrics().completed, (200 - overloaded) as u64);
}

#[test]
fn expired_deadlines_are_shed_with_explicit_outcome() {
    let service = slow_service(
        Duration::from_millis(10),
        ServeConfig { shards: 1, queue_capacity: 64, ..Default::default() },
    );

    // The first request occupies the worker; the rest queue behind it with
    // a deadline shorter than the service time and must be shed.
    let mut handles = Vec::new();
    for i in 0..8 {
        if let Admission::Enqueued(h) =
            service.submit_with_deadline(product(&format!("q{i}")), Some(Duration::from_millis(1)))
        {
            handles.push(h);
        }
    }
    let results: Vec<_> = handles.into_iter().map(|h| h.wait()).collect();
    let shed = results.iter().filter(|r| **r == Err(ServeError::DeadlineExceeded)).count();
    assert!(shed > 0, "queued requests past their deadline must be shed: {results:?}");
    assert_eq!(service.metrics().deadline_shed, shed as u64);
}

#[test]
fn overload_degrades_to_rules_only_and_recovers() {
    let service = slow_service(
        Duration::from_millis(3),
        ServeConfig {
            shards: 1,
            queue_capacity: 64,
            high_water: 8,
            low_water: 2,
            worker_poll: Duration::from_millis(5),
            ..Default::default()
        },
    );

    let handles: Vec<_> = (0..40)
        .filter_map(|i| match service.submit(product(&format!("d{i}"))) {
            Admission::Enqueued(h) => Some(h),
            Admission::Overloaded => None,
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.wait().expect("served")).collect();
    let degraded = outcomes.iter().filter(|o| o.degraded).count();
    assert!(degraded > 0, "crossing the high-water mark must degrade some requests");
    assert_eq!(service.metrics().degraded_served, degraded as u64);

    // After the backlog drains below the low-water mark, full fidelity
    // resumes and fresh requests are not degraded.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let o = service.submit(product("after")).expect_enqueued().wait().expect("served");
        if !o.degraded {
            break;
        }
        assert!(Instant::now() < deadline, "service never recovered from degradation");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(!service.is_degraded());
}

#[test]
fn classifier_panic_is_contained_to_the_request() {
    let service =
        slow_service(Duration::from_micros(100), ServeConfig { shards: 1, ..Default::default() });
    let err = service.submit(product("poison")).expect_enqueued().wait().unwrap_err();
    assert!(matches!(err, ServeError::ClassifierPanicked(ref m) if m.contains("poisoned")));
    // The shard worker survived and keeps serving.
    let ok = service.submit(product("healthy")).expect_enqueued().wait().expect("served");
    assert_eq!(ok.decision.type_id(), Some(TypeId(7)));
    assert_eq!(service.metrics().classifier_panics, 1);
}

#[test]
fn shutdown_completes_every_queued_request_with_explicit_outcome() {
    let mut service = slow_service(
        Duration::from_millis(2),
        ServeConfig { shards: 2, queue_capacity: 128, ..Default::default() },
    );
    let handles: Vec<_> =
        (0..50).map(|i| service.submit(product(&format!("s{i}"))).expect_enqueued()).collect();
    service.shutdown();
    // Everything admitted before shutdown resolves: classified if a worker
    // got to it first, explicitly shed otherwise — but never hung. Bound
    // the wait so a liveness regression fails the test instead of wedging
    // the suite.
    let mut served = 0u64;
    let mut shed = 0u64;
    for h in handles {
        match h.wait_timeout(Duration::from_secs(5)).expect("no caller may hang at shutdown") {
            Ok(_) => served += 1,
            Err(ServeError::ShuttingDown) => shed += 1,
            Err(other) => panic!("unexpected shutdown outcome: {other:?}"),
        }
    }
    assert_eq!(served + shed, 50);
    let report = service.metrics();
    assert_eq!(report.completed, served);
    assert_eq!(report.shutdown_shed, shed);
    // New work is rejected.
    assert!(service.submit(product("late")).is_overloaded());
}

/// The durability tentpole, end to end: rules added through the durable
/// handle survive a full service restart — a fresh pipeline over the same
/// storage recovers them and serves traffic with the pre-crash rule set
/// from its very first snapshot.
#[test]
fn restarted_service_recovers_rules_before_admitting_traffic() {
    let storage = Arc::new(MemStorage::new());

    // First life: empty pipeline, durable rules added while serving.
    {
        let chimera = Arc::new(Chimera::new(Taxonomy::builtin(), ChimeraConfig::default()));
        let provider = Arc::new(
            DurableProvider::open(
                chimera,
                Arc::clone(&storage) as Arc<dyn Storage>,
                DurableConfig::default(),
            )
            .expect("open durable provider"),
        );
        assert_eq!(provider.recovery().recovered_rules, 0, "nothing durable yet");
        let service =
            RuleService::start(provider.clone(), ServeConfig { shards: 2, ..Default::default() });
        provider
            .store()
            .add_rules("rings? -> rings\nsofas? -> sofas\n", &Default::default())
            .expect("durable add");
        service.refresh_now();
        let outcome =
            service.submit(product("diamond ring")).expect_enqueued().wait().expect("served");
        assert!(outcome.decision.type_id().is_some());
        // Service and pipeline drop here: the process "crashes".
    }

    // Second life: a brand-new pipeline over the same storage. Recovery
    // happens inside DurableProvider::open — before RuleService::start
    // builds the initial snapshot — so the first request already sees the
    // recovered rules.
    let chimera = Arc::new(Chimera::new(Taxonomy::builtin(), ChimeraConfig::default()));
    let rings = chimera.taxonomy().id_of("rings").unwrap();
    let provider = Arc::new(
        DurableProvider::open(
            chimera,
            Arc::clone(&storage) as Arc<dyn Storage>,
            DurableConfig::default(),
        )
        .expect("reopen durable provider"),
    );
    let report = provider.recovery();
    assert_eq!(report.recovered_rules, 2, "both rules recovered: {report:?}");
    let service =
        RuleService::start(provider.clone(), ServeConfig { shards: 2, ..Default::default() });
    let outcome =
        service.submit(product("diamond wedding ring")).expect_enqueued().wait().expect("served");
    assert_eq!(outcome.decision.type_id(), Some(rings), "recovered rule classified the request");
}

#[test]
fn refresh_now_publishes_synchronously() {
    let chimera = ruled_chimera();
    let provider = Arc::new(ChimeraProvider::new(chimera.clone()));
    let service = RuleService::start(
        provider,
        // A long refresh interval so only refresh_now can publish quickly.
        ServeConfig { shards: 1, refresh_interval: Duration::from_secs(30), ..Default::default() },
    );
    let v0 = service.snapshot_version();
    chimera.add_rules("sofas? -> sofas\n").unwrap();
    let v1 = service.refresh_now();
    assert!(v1 > v0);
    assert_eq!(service.snapshot_version(), v1);
    assert!(service.swap_count() >= 1);
}

#[test]
fn metrics_track_load_shape() {
    struct CountingProvider {
        builds: AtomicU64,
        inner: StaticProvider,
    }
    impl SnapshotProvider for CountingProvider {
        fn build(&self) -> Arc<dyn RequestClassifier> {
            self.builds.fetch_add(1, Ordering::Relaxed);
            self.inner.build()
        }
        fn revision(&self) -> u64 {
            self.inner.revision()
        }
        fn wait_for_change(&self, last_seen: u64, timeout: Duration) -> u64 {
            self.inner.wait_for_change(last_seen, timeout)
        }
    }

    let classifier =
        Arc::new(SlowClassifier { version: 1, delay: Duration::from_micros(200), ty: TypeId(3) });
    let provider =
        CountingProvider { builds: AtomicU64::new(0), inner: StaticProvider::new(classifier) };
    let service =
        RuleService::start(Arc::new(provider), ServeConfig { shards: 2, ..Default::default() });

    let handles: Vec<_> =
        (0..64).map(|i| service.submit(product(&format!("m{i}"))).expect_enqueued()).collect();
    for h in handles {
        h.wait().expect("served");
    }
    let r = service.metrics();
    assert_eq!(r.submitted, 64);
    assert_eq!(r.completed, 64);
    assert_eq!(r.overloaded, 0);
    assert!(r.p50 <= r.p99);
    assert!(r.p99 > Duration::ZERO);
    assert!(r.avg_candidates > 0.0);
    assert!(r.max_queue_depth >= 1);
}

#[test]
fn text_exposition_covers_queue_shed_and_latency() {
    // The scrape surface the tier promises: per-shard queue depth, every
    // admission/shed outcome, snapshot-build timing, and the end-to-end
    // latency summary — all from one render_metrics() call.
    let service = slow_service(
        Duration::from_millis(5),
        ServeConfig {
            shards: 2,
            queue_capacity: 4,
            high_water: 100,
            low_water: 1,
            ..Default::default()
        },
    );

    let mut handles = Vec::new();
    for i in 0..64 {
        if let Admission::Enqueued(h) = service.submit(product(&format!("t{i}"))) {
            handles.push(h);
        }
    }
    // One short-deadline request that must be shed while queued (retry
    // admission: the flood keeps the queues at capacity for a while).
    let doomed = loop {
        match service.submit_with_deadline(product("doomed"), Some(Duration::from_micros(1))) {
            Admission::Enqueued(h) => break h,
            Admission::Overloaded => std::thread::sleep(Duration::from_millis(1)),
        }
    };
    let _ = doomed.wait();
    for h in handles {
        h.wait().expect("served");
    }

    let text = service.render_metrics();
    for required in [
        "# TYPE rulekit_serve_queue_depth gauge",
        "rulekit_serve_queue_depth{shard=\"0\"}",
        "rulekit_serve_queue_depth{shard=\"1\"}",
        "rulekit_serve_queue_depth_max",
        "rulekit_serve_submitted_total",
        "rulekit_serve_completed_total",
        "rulekit_serve_overloaded_total",
        "rulekit_serve_deadline_shed_total",
        "# TYPE rulekit_serve_latency_nanos summary",
        "rulekit_serve_latency_nanos{quantile=\"0.99\"}",
        "rulekit_serve_latency_nanos_count",
        "rulekit_serve_snapshot_build_nanos_count 1",
    ] {
        assert!(text.contains(required), "missing {required:?} in exposition:\n{text}");
    }

    // The gauges drain back to zero once the queues are empty, and the
    // structured snapshot agrees with the report counters.
    let m = service.service_metrics();
    assert_eq!(m.shard_depth(0).value() + m.shard_depth(1).value(), 0);
    let snap = m.snapshot();
    let report = service.metrics();
    assert_eq!(snap.counter("rulekit_serve_submitted_total"), Some(report.submitted));
    assert_eq!(snap.counter("rulekit_serve_overloaded_total"), Some(report.overloaded));
    assert!(report.overloaded > 0, "tiny queues must have rejected something");
    // The latency histogram records completions only — shed requests never
    // reach it.
    assert_eq!(
        snap.histogram("rulekit_serve_latency_nanos").map(|h| h.count()),
        Some(report.completed),
    );
}

#[test]
fn exposition_covers_the_inference_tier() {
    // Serving and the pipeline share one registry, so a single scrape
    // covers queue metrics AND the fact-inference tier's
    // `rulekit_infer_*` family — products chained, facts derived, rounds.
    let tax = Taxonomy::builtin();
    let chimera = Chimera::new(tax, ChimeraConfig::default());
    chimera
        .add_rules(
            "infer: has(isbn) => fact media = book\n\
             infer: media == \"book\" => fact aisle = 3\n\
             attr(media) -> books\n",
        )
        .unwrap();
    let registry = chimera.metrics().registry().clone();
    let books = chimera.taxonomy().id_of("books").unwrap();
    let provider = Arc::new(ChimeraProvider::new(Arc::new(chimera)));
    let service = RuleService::start_with_registry(
        provider,
        ServeConfig { shards: 2, ..Default::default() },
        registry,
    );

    let mut p = product("unlabeled media item");
    p.attributes.push(("ISBN".into(), "9781234567890".into()));
    let outcome = service.submit(p).expect_enqueued().wait().expect("classified");
    assert_eq!(outcome.decision.type_id(), Some(books), "derived fact must carry the decision");

    let text = service.render_metrics();
    for required in [
        "# TYPE rulekit_infer_products_total counter",
        "rulekit_infer_products_total 1",
        "rulekit_infer_facts_total 2",
        "rulekit_infer_bound_hits_total 0",
        "rulekit_infer_rounds_count 1",
        "rulekit_infer_nanos_count 1",
        "rulekit_serve_completed_total 1",
    ] {
        assert!(text.contains(required), "missing {required:?} in exposition:\n{text}");
    }
}
