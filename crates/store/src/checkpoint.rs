//! Checkpoints: a full serialization of the repository (every rule's DSL
//! source plus its metadata — enabled *and* disabled, the durable analogue
//! of `export_dsl`), written temp-file-first, fsynced, then atomically
//! renamed into place. Files are named `ckpt-<revision>` so recovery can
//! pick the newest; a corrupt candidate (torn temp promoted by a buggy
//! filesystem, bit rot) is skipped in favour of the next-newest valid one.
//!
//! File layout: `[ crc32(payload): u32 ][ payload ]` with
//! `payload = [ magic "RKCP1" ][ revision: u64 ][ next_id: u64 ]
//! [ count: u32 ] [ count rule entries ]`.

use crate::codec::{put_f64, put_str, put_u32, put_u64, Cursor};
use crate::crc::crc32;
use crate::storage::{Storage, StoreError};

const MAGIC: &[u8; 5] = b"RKCP1";
const PREFIX: &str = "ckpt-";
const TMP_NAME: &str = "ckpt.tmp";

/// One rule as persisted in a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointRule {
    /// Repository-assigned id.
    pub id: u64,
    /// DSL source line (parseable; disabled state is in `status`, not a
    /// comment prefix as in `export_dsl`).
    pub source: String,
    /// Author.
    pub author: String,
    /// Provenance wire byte (see [`crate::wal::encode_provenance`]).
    pub provenance: u8,
    /// Status wire byte (0 enabled / 1 disabled).
    pub status: u8,
    /// Confidence.
    pub confidence: f64,
    /// Revision the rule was added at.
    pub added_at: u64,
}

/// A decoded checkpoint: the complete repository state at `revision`.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointData {
    /// Revision the checkpoint captures.
    pub revision: u64,
    /// The repository's id counter at that revision.
    pub next_id: u64,
    /// All rules, in repository order.
    pub rules: Vec<CheckpointRule>,
}

impl CheckpointData {
    /// Serializes to the on-disk image (CRC header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + self.rules.len() * 64);
        payload.extend_from_slice(MAGIC);
        put_u64(&mut payload, self.revision);
        put_u64(&mut payload, self.next_id);
        put_u32(&mut payload, self.rules.len() as u32);
        for r in &self.rules {
            put_u64(&mut payload, r.id);
            put_str(&mut payload, &r.source);
            put_str(&mut payload, &r.author);
            payload.push(r.provenance);
            payload.push(r.status);
            put_f64(&mut payload, r.confidence);
            put_u64(&mut payload, r.added_at);
        }
        let mut out = Vec::with_capacity(4 + payload.len());
        put_u32(&mut out, crc32(&payload));
        out.extend_from_slice(&payload);
        out
    }

    /// Validates and decodes an on-disk image.
    pub fn decode(bytes: &[u8]) -> Result<CheckpointData, StoreError> {
        if bytes.len() < 4 + MAGIC.len() {
            return Err(StoreError::Corrupt("checkpoint too short".into()));
        }
        let crc = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
        let payload = &bytes[4..];
        if crc32(payload) != crc {
            return Err(StoreError::Corrupt("checkpoint checksum mismatch".into()));
        }
        if &payload[..MAGIC.len()] != MAGIC {
            return Err(StoreError::Corrupt("bad checkpoint magic".into()));
        }
        let mut c = Cursor::new(&payload[MAGIC.len()..]);
        let revision = c.get_u64()?;
        let next_id = c.get_u64()?;
        let count = c.get_u32()? as usize;
        let mut rules = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            rules.push(CheckpointRule {
                id: c.get_u64()?,
                source: c.get_str()?,
                author: c.get_str()?,
                provenance: c.get_u8()?,
                status: c.get_u8()?,
                confidence: c.get_f64()?,
                added_at: c.get_u64()?,
            });
        }
        if c.remaining() != 0 {
            return Err(StoreError::Corrupt("trailing checkpoint bytes".into()));
        }
        Ok(CheckpointData { revision, next_id, rules })
    }
}

/// The durable file name for a checkpoint at `revision` (zero-padded so
/// lexicographic order is numeric order).
pub fn checkpoint_name(revision: u64) -> String {
    format!("{PREFIX}{revision:020}")
}

fn parse_name(name: &str) -> Option<u64> {
    name.strip_prefix(PREFIX)?.parse().ok()
}

/// Writes a checkpoint durably: temp file → fsync → atomic rename. Returns
/// the final name. A crash anywhere before the rename leaves only a temp
/// file that recovery ignores and deletes.
pub fn write(storage: &dyn Storage, data: &CheckpointData) -> Result<String, StoreError> {
    storage.remove(TMP_NAME)?;
    let bytes = data.encode();
    storage.append(TMP_NAME, &bytes)?;
    storage.sync(TMP_NAME)?;
    let name = checkpoint_name(data.revision);
    storage.rename(TMP_NAME, &name)?;
    Ok(name)
}

/// Result of scanning storage for checkpoints.
#[derive(Debug, Default)]
pub struct CheckpointScan {
    /// The newest checkpoint that validated, if any.
    pub latest: Option<CheckpointData>,
    /// Candidates that failed validation (skipped, then deleted by
    /// housekeeping).
    pub corrupt: Vec<String>,
}

/// Finds the newest *valid* checkpoint. Candidates are tried newest-first;
/// corrupt ones are recorded and skipped — recovery only fails if storage
/// itself errors.
pub fn load_latest(storage: &dyn Storage) -> Result<CheckpointScan, StoreError> {
    let mut revisions: Vec<(u64, String)> =
        storage.list()?.into_iter().filter_map(|n| parse_name(&n).map(|rev| (rev, n))).collect();
    revisions.sort_unstable_by_key(|r| std::cmp::Reverse(r.0));
    let mut scan = CheckpointScan::default();
    for (_, name) in revisions {
        match storage.read(&name).map_err(StoreError::from).and_then(|b| CheckpointData::decode(&b))
        {
            Ok(data) if scan.latest.is_none() => scan.latest = Some(data),
            Ok(_) => {} // older valid checkpoint — retained by housekeeping policy
            Err(StoreError::Io(e)) => return Err(StoreError::Io(e)),
            Err(_) => scan.corrupt.push(name),
        }
    }
    Ok(scan)
}

/// Deletes every checkpoint whose revision is strictly above `revision`.
/// Recovery picks the newest checkpoint, so when a follower installs a
/// leader snapshot *older* than its own divergent history (the
/// follower-ahead-of-restarted-leader path), any higher-revision local
/// checkpoint must go first or it would win the next recovery scan and
/// resurrect the forked state. Unlike housekeeping this is a correctness
/// operation: failures propagate so the install aborts instead of
/// publishing alongside a survivor.
pub fn remove_above(storage: &dyn Storage, revision: u64) -> Result<(), StoreError> {
    for name in storage.list()? {
        if parse_name(&name).is_some_and(|rev| rev > revision) {
            storage.remove(&name)?;
        }
    }
    Ok(())
}

/// Deletes temp leftovers, corrupt candidates, and all but the newest
/// `keep` checkpoints. Best-effort: deletion failures are ignored (they
/// re-run next time).
pub fn housekeep(storage: &dyn Storage, corrupt: &[String], keep: usize) {
    let _ = storage.remove(TMP_NAME);
    for name in corrupt {
        let _ = storage.remove(name);
    }
    let Ok(names) = storage.list() else { return };
    let mut revisions: Vec<(u64, String)> =
        names.into_iter().filter_map(|n| parse_name(&n).map(|rev| (rev, n))).collect();
    revisions.sort_unstable_by_key(|r| std::cmp::Reverse(r.0));
    for (_, name) in revisions.into_iter().skip(keep.max(1)) {
        let _ = storage.remove(&name);
    }
}

/// Summary of one compaction (for stats/experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointStats {
    /// Revision the last checkpoint captured.
    pub revision: u64,
    /// Rules in it.
    pub rules: usize,
    /// Encoded size in bytes.
    pub bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn sample(revision: u64) -> CheckpointData {
        CheckpointData {
            revision,
            next_id: 7,
            rules: vec![
                CheckpointRule {
                    id: 0,
                    source: "rings? -> rings".into(),
                    author: "analyst".into(),
                    provenance: 0,
                    status: 0,
                    confidence: 1.0,
                    added_at: 0,
                },
                CheckpointRule {
                    id: 3,
                    source: "rugs? -> area rugs".into(),
                    author: "miner".into(),
                    provenance: 2,
                    status: 1,
                    confidence: 0.8,
                    added_at: 2,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let data = sample(42);
        assert_eq!(CheckpointData::decode(&data.encode()).unwrap(), data);
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut bytes = sample(1).encode();
        bytes[20] ^= 0x02;
        assert!(matches!(CheckpointData::decode(&bytes), Err(StoreError::Corrupt(_))));
        assert!(CheckpointData::decode(&[1, 2, 3]).is_err());
    }

    #[test]
    fn write_then_load_latest() {
        let storage = MemStorage::new();
        write(&storage, &sample(5)).unwrap();
        write(&storage, &sample(9)).unwrap();
        let scan = load_latest(&storage).unwrap();
        assert_eq!(scan.latest.unwrap().revision, 9);
        assert!(scan.corrupt.is_empty());
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous() {
        let storage = MemStorage::new();
        write(&storage, &sample(5)).unwrap();
        let newest = write(&storage, &sample(9)).unwrap();
        // Bit-rot the newest checkpoint.
        storage.flip_bit(&newest, 30);
        let scan = load_latest(&storage).unwrap();
        assert_eq!(scan.latest.unwrap().revision, 5, "falls back to older valid checkpoint");
        assert_eq!(scan.corrupt, vec![newest.clone()]);
        housekeep(&storage, &scan.corrupt, 2);
        assert!(!storage.list().unwrap().contains(&newest));
    }

    #[test]
    fn housekeep_prunes_old_checkpoints_and_tmp() {
        let storage = MemStorage::new();
        for rev in [3u64, 6, 9, 12] {
            write(&storage, &sample(rev)).unwrap();
        }
        storage.append(TMP_NAME, b"partial").unwrap();
        housekeep(&storage, &[], 2);
        let mut names = storage.list().unwrap();
        names.sort();
        assert_eq!(names, vec![checkpoint_name(9), checkpoint_name(12)]);
    }
}
