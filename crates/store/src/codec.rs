//! Minimal hand-rolled binary encoding shared by the WAL, checkpoint, and
//! replication wire formats: little-endian fixed-width integers and
//! u32-length-prefixed UTF-8 strings. No serde offline; the format is
//! deliberately trivial so corruption handling stays auditable.

use crate::storage::StoreError;

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A cursor over encoded bytes; every getter fails loudly on underrun so a
/// truncated payload surfaces as [`StoreError::Corrupt`], never a panic.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Corrupt(format!(
                "payload underrun: need {n} bytes, have {}",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn get_u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub fn get_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Consumes and returns every remaining byte (for trailing
    /// variable-length fields that carry their own framing).
    pub fn rest(&mut self) -> &'a [u8] {
        let slice = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        slice
    }

    pub fn get_str(&mut self) -> Result<String, StoreError> {
        let len = self.get_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt("string field is not UTF-8".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 3);
        put_f64(&mut buf, 0.25);
        put_str(&mut buf, "rings? -> rings");
        let mut c = Cursor::new(&buf);
        assert_eq!(c.get_u32().unwrap(), 7);
        assert_eq!(c.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(c.get_f64().unwrap(), 0.25);
        assert_eq!(c.get_str().unwrap(), "rings? -> rings");
        assert_eq!(c.remaining(), 0);
    }

    #[test]
    fn underrun_is_an_error_not_a_panic() {
        let mut c = Cursor::new(&[1, 2]);
        assert!(c.get_u64().is_err());
        let mut buf = Vec::new();
        put_u32(&mut buf, 100); // claims a 100-byte string, provides none
        let mut c = Cursor::new(&buf);
        assert!(c.get_str().is_err());
    }
}
