//! CRC-32 (ISO-HDLC polynomial, the zlib/`crc32fast` variant), computed
//! with a lazily built 256-entry table. No external crates are available
//! offline, and the WAL needs a checksum whose reference values are easy to
//! verify against any other implementation.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *entry = crc;
        }
        table
    })
}

/// CRC-32 of `data` (init `0xFFFF_FFFF`, reflected, final xor) — identical
/// output to zlib's `crc32`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Reference values from zlib's crc32().
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit() {
        let a = crc32(b"rules are assets");
        let mut data = *b"rules are assets";
        data[3] ^= 0x01;
        assert_ne!(a, crc32(&data));
    }
}
