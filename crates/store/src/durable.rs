//! [`DurableRepository`]: a [`RuleRepository`] whose every mutation is
//! write-ahead logged before it is applied, with periodic checkpoint
//! compaction and crash recovery on open.
//!
//! The ordering contract is log-then-apply under one mutation lock: a
//! mutation is *acknowledged* (returned `Ok`) only after its WAL record is
//! durable to the extent the [`FsyncPolicy`] promises; only then does it
//! touch the in-memory repository. Recovery ([`DurableRepository::open`])
//! loads the newest valid checkpoint, replays the WAL tail through the
//! normal repository API (ids and revisions re-derive deterministically
//! because writers are serialized), truncates any torn tail, and returns a
//! [`RecoveryReport`] describing what it found.

use std::sync::{Arc, Mutex, MutexGuard};

use rulekit_core::{Rule, RuleId, RuleMeta, RuleParser, RuleRepository, RuleSpec};
use rulekit_data::TypeId;

use crate::checkpoint::{self, CheckpointData, CheckpointRule, CheckpointStats};
use crate::crc::crc32;
use crate::obs::StoreMetrics;
use crate::storage::{Storage, StoreError};
use crate::wal::{self, WalOp, WalRecord, WalWriter};
use rulekit_obs::{Registry, SpanTimer};

/// The WAL's file name inside its storage namespace.
pub const WAL_NAME: &str = "wal";

/// File holding the replication leader epoch (incarnation counter).
pub const EPOCH_NAME: &str = "epoch";
const EPOCH_TMP: &str = "epoch.tmp";

fn decode_epoch(bytes: &[u8]) -> Option<u64> {
    if bytes.len() != 12 {
        return None;
    }
    let crc = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
    if crc32(&bytes[4..]) != crc {
        return None;
    }
    Some(u64::from_le_bytes(bytes[4..12].try_into().ok()?))
}

/// When acknowledged mutations become crash-proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Fsync after every record: an `Ok` mutation survives any crash. The
    /// durable default.
    #[default]
    Always,
    /// Fsync every `n` records: bounded loss window, much higher
    /// throughput. A crash may lose up to `n - 1` acknowledged tail
    /// mutations (never reordered, never corrupted).
    EveryN(u32),
    /// Never fsync explicitly; durability rides on OS writeback. Crash may
    /// lose any acknowledged suffix.
    Never,
}

/// Tuning for a [`DurableRepository`].
#[derive(Debug, Clone, Copy)]
pub struct DurableConfig {
    /// Fsync policy for the WAL.
    pub fsync: FsyncPolicy,
    /// Compact (checkpoint + WAL reset) once the WAL holds this many
    /// records. `0` disables automatic compaction (explicit
    /// [`DurableRepository::checkpoint`] still works).
    pub checkpoint_every: u64,
    /// How many recent checkpoints to retain (minimum 1; the default 2
    /// keeps one fallback if the newest suffers bit rot).
    pub keep_checkpoints: usize,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig { fsync: FsyncPolicy::Always, checkpoint_every: 1024, keep_checkpoints: 2 }
    }
}

/// What [`DurableRepository::open`] found and did.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Revision of the checkpoint recovery started from (0 = none found).
    pub checkpoint_revision: u64,
    /// Rules in that checkpoint.
    pub checkpoint_rules: usize,
    /// Checkpoint candidates that failed validation and were skipped.
    pub corrupt_checkpoints: usize,
    /// WAL records applied on top of the checkpoint.
    pub replayed: u64,
    /// WAL records skipped because the checkpoint already contained them
    /// (a crash between checkpoint publish and WAL reset leaves them).
    pub skipped: u64,
    /// Torn/corrupt WAL tail bytes truncated (including the bytes of any
    /// discarded non-applying suffix).
    pub truncated_bytes: u64,
    /// Well-formed WAL records discarded because they could not apply on
    /// top of the recovered state (revision gap, id mismatch, no-op
    /// replay). Non-zero only after an interrupted snapshot install left
    /// records from a divergent history behind; the suffix is truncated
    /// from disk so the next open is clean.
    pub discarded_records: u64,
    /// Why the WAL scan stopped early, if it did.
    pub wal_stop_reason: Option<String>,
    /// Repository revision after recovery.
    pub recovered_revision: u64,
    /// Rules (any status) after recovery.
    pub recovered_rules: usize,
}

/// Durability counters (experiments and operational introspection).
#[derive(Debug, Clone, Copy, Default)]
pub struct StoreStats {
    /// Acknowledged records currently in the WAL.
    pub wal_records: u64,
    /// Acknowledged WAL bytes.
    pub wal_bytes: u64,
    /// Checkpoints written since open.
    pub checkpoints_written: u64,
    /// The most recent checkpoint, if any.
    pub last_checkpoint: CheckpointStats,
}

struct WriterState {
    wal: WalWriter,
    checkpoints_written: u64,
    last_checkpoint: CheckpointStats,
}

/// Observer invoked (under the mutation lock, so in exact log order) with
/// every WAL record this repository acknowledges. Replication leaders hang
/// their shipping log off this hook; keep the callback cheap — it runs on
/// the mutating thread.
pub type RecordSink = Arc<dyn Fn(&WalRecord) + Send + Sync>;

/// What [`DurableRepository::apply_replicated`] did with a shipped record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// The record was the next revision: logged locally and applied.
    Applied,
    /// The record's revision was already folded in (duplicate after a
    /// resume); nothing logged, nothing applied.
    Skipped,
}

/// Order-insensitive-free digest of the full rule catalog (id, source,
/// status, metadata, revision, next id), FNV-1a over a canonical byte walk
/// in id order. Two repositories with equal hashes hold identical rule
/// state — the replication suite's divergence check.
pub fn catalog_hash(repo: &RuleRepository) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    let mut rules = repo.full_snapshot();
    rules.sort_by_key(|r| r.id.0);
    eat(&repo.revision().to_le_bytes());
    eat(&repo.next_rule_id().to_le_bytes());
    for r in &rules {
        eat(&r.id.0.to_le_bytes());
        eat(r.source.as_bytes());
        eat(&[0xff, wal::encode_status(r.meta.status), wal::encode_provenance(r.meta.provenance)]);
        eat(r.meta.author.as_bytes());
        eat(&[0xfe]);
        eat(&r.meta.confidence.to_bits().to_le_bytes());
        eat(&r.meta.added_at.to_le_bytes());
    }
    h
}

/// A [`RuleRepository`] with a write-ahead log and checkpoints underneath.
/// Reads go straight to [`DurableRepository::repository`]; all mutations
/// must flow through this wrapper, which serializes them internally.
pub struct DurableRepository {
    repo: Arc<RuleRepository>,
    parser: RuleParser,
    storage: Arc<dyn Storage>,
    config: DurableConfig,
    state: Mutex<WriterState>,
    recovery: RecoveryReport,
    metrics: Option<Arc<StoreMetrics>>,
    sink: Mutex<Option<RecordSink>>,
}

impl DurableRepository {
    /// Opens (recovering if durable state exists) over a fresh repository.
    pub fn open(
        storage: Arc<dyn Storage>,
        parser: RuleParser,
        config: DurableConfig,
    ) -> Result<DurableRepository, StoreError> {
        DurableRepository::open_into(RuleRepository::new(), storage, parser, config)
    }

    /// [`DurableRepository::open`] with durability telemetry (WAL append/
    /// fsync latency, checkpoint timing, recovery accounting) registered in
    /// `registry`.
    pub fn open_observed(
        storage: Arc<dyn Storage>,
        parser: RuleParser,
        config: DurableConfig,
        registry: &Registry,
    ) -> Result<DurableRepository, StoreError> {
        DurableRepository::open_into_observed(
            RuleRepository::new(),
            storage,
            parser,
            config,
            Some(StoreMetrics::register(registry)),
        )
    }

    /// Opens over a caller-supplied repository (e.g. one already wired into
    /// a pipeline). Its previous contents are replaced by the recovered
    /// state; watchers see one change notification.
    pub fn open_into(
        repo: Arc<RuleRepository>,
        storage: Arc<dyn Storage>,
        parser: RuleParser,
        config: DurableConfig,
    ) -> Result<DurableRepository, StoreError> {
        DurableRepository::open_into_observed(repo, storage, parser, config, None)
    }

    /// [`DurableRepository::open_into`] with optional telemetry handles.
    ///
    /// Recovery treats persisted-entry metrics as *levels*: it **sets**
    /// `rulekit_store_persisted_rules` / `_revision` from the recovered
    /// state rather than incrementing per replayed record, so reopening the
    /// same durable state twice cannot double-count entries that were
    /// persisted exactly once. Replay work counters (`replay_applied` /
    /// `replay_skipped`) do accumulate — they measure replay effort, not
    /// persisted state.
    pub fn open_into_observed(
        repo: Arc<RuleRepository>,
        storage: Arc<dyn Storage>,
        parser: RuleParser,
        config: DurableConfig,
        metrics: Option<Arc<StoreMetrics>>,
    ) -> Result<DurableRepository, StoreError> {
        let mut report = RecoveryReport::default();

        // 1. Newest valid checkpoint (corrupt candidates skipped, then
        //    deleted by housekeeping below).
        let ckpt_scan = checkpoint::load_latest(&*storage)?;
        report.corrupt_checkpoints = ckpt_scan.corrupt.len();
        let (rules, next_id, base_revision) = match &ckpt_scan.latest {
            Some(data) => {
                report.checkpoint_revision = data.revision;
                report.checkpoint_rules = data.rules.len();
                (rebuild_rules(&parser, &data.rules)?, data.next_id, data.revision)
            }
            None => (Vec::new(), 0, 0),
        };
        repo.restore(rules, next_id, base_revision);

        // 2. WAL: accept the longest valid prefix, truncate the torn tail.
        let wal_bytes = match storage.read(WAL_NAME) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let wal_scan = wal::scan(&wal_bytes);
        report.truncated_bytes = wal_scan.truncated_bytes;
        report.wal_stop_reason = wal_scan.stop_reason.clone();
        if wal_scan.truncated_bytes > 0 {
            storage.truncate(WAL_NAME, wal_scan.valid_len)?;
        }

        // 3. Replay the tail through the normal mutation API. Records at or
        //    below the checkpoint revision are already folded in (crash
        //    between checkpoint publish and WAL reset) and are skipped. A
        //    suffix that cannot apply — a revision gap, an id mismatch, a
        //    no-op replay — is the residue of an interrupted snapshot
        //    install (divergent pre-snapshot history alongside a newer
        //    checkpoint) and is discarded: truncated from disk and reported,
        //    rather than failing the open and stranding the node.
        //    Contiguity is checked *before* applying, so a discarded record
        //    never half-mutates the repository.
        let mut wal_len = wal_scan.valid_len;
        let mut wal_records = wal_scan.records.len() as u64;
        for (i, record) in wal_scan.records.iter().enumerate() {
            if record.revision <= repo.revision() {
                report.skipped += 1;
                continue;
            }
            let applied = if record.revision == repo.revision() + 1 {
                apply_record(&repo, &parser, record)
            } else {
                Err(StoreError::Corrupt(format!(
                    "revision gap: record {} after repository revision {}",
                    record.revision,
                    repo.revision()
                )))
            };
            match applied {
                Ok(()) => report.replayed += 1,
                Err(e) => {
                    let cut = wal_scan.record_starts[i];
                    storage.truncate(WAL_NAME, cut)?;
                    report.discarded_records = (wal_scan.records.len() - i) as u64;
                    report.truncated_bytes += wal_len - cut;
                    report.wal_stop_reason = Some(format!("discarded non-applying suffix: {e}"));
                    wal_len = cut;
                    wal_records = i as u64;
                    break;
                }
            }
        }

        checkpoint::housekeep(&*storage, &ckpt_scan.corrupt, config.keep_checkpoints);

        report.recovered_revision = repo.revision();
        report.recovered_rules = repo.len();
        if let Some(m) = &metrics {
            m.recoveries.inc();
            m.replay_applied.add(report.replayed);
            m.replay_skipped.add(report.skipped);
            m.persisted_rules.set(report.recovered_rules as i64);
            m.persisted_revision.set(report.recovered_revision as i64);
            m.wal_records.set(wal_records as i64);
        }
        let wal =
            WalWriter::new(Arc::clone(&storage), WAL_NAME, config.fsync, wal_len, wal_records)
                .with_metrics(metrics.clone());
        Ok(DurableRepository {
            repo,
            parser,
            storage,
            config,
            state: Mutex::new(WriterState {
                wal,
                checkpoints_written: 0,
                last_checkpoint: CheckpointStats::default(),
            }),
            recovery: report,
            metrics,
            sink: Mutex::new(None),
        })
    }

    /// Installs (or clears) the acknowledged-record observer. The sink sees
    /// every record logged *after* this call, in exact log order; a leader
    /// that needs the records before the hookup reads them via
    /// [`DurableRepository::snapshot_data`].
    pub fn set_record_sink(&self, sink: Option<RecordSink>) {
        *self.sink.lock().unwrap_or_else(|e| e.into_inner()) = sink;
    }

    fn emit(&self, record: &WalRecord) {
        let guard = self.sink.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(sink) = guard.as_ref() {
            sink(record);
        }
    }

    /// The durability telemetry handles, if this instance was opened
    /// observed.
    pub fn metrics(&self) -> Option<&Arc<StoreMetrics>> {
        self.metrics.as_ref()
    }

    /// Re-points the persisted-state level gauges at the current repository
    /// state. Levels are set, never incremented (see
    /// [`DurableRepository::open_into_observed`]).
    fn note_persisted_levels(&self) {
        if let Some(m) = &self.metrics {
            m.persisted_rules.set(self.repo.len() as i64);
            m.persisted_revision.set(self.repo.revision() as i64);
        }
    }

    /// The underlying repository (shareable with executors/snapshots; do
    /// not mutate it directly — un-logged mutations will not survive a
    /// restart and desynchronize WAL revisions).
    pub fn repository(&self) -> &Arc<RuleRepository> {
        &self.repo
    }

    /// The parser used to rebuild rules during recovery.
    pub fn parser(&self) -> &RuleParser {
        &self.parser
    }

    /// What recovery found when this instance opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Current durability counters.
    pub fn stats(&self) -> StoreStats {
        let st = self.lock_state();
        StoreStats {
            wal_records: st.wal.records(),
            wal_bytes: st.wal.len(),
            checkpoints_written: st.checkpoints_written,
            last_checkpoint: st.last_checkpoint,
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, WriterState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Durably adds a parsed rule. On `Ok` the rule is logged (and applied);
    /// on `Err` neither happened.
    pub fn add_rule(&self, spec: RuleSpec, mut meta: RuleMeta) -> Result<RuleId, StoreError> {
        let mut st = self.lock_state();
        let id = self.repo.next_rule_id();
        let revision = self.repo.revision() + 1;
        meta.added_at = self.repo.revision();
        let record = WalRecord {
            revision,
            op: WalOp::Add {
                id,
                source: spec.source.clone(),
                author: meta.author.clone(),
                provenance: wal::encode_provenance(meta.provenance),
                status: wal::encode_status(meta.status),
                confidence: meta.confidence,
                added_at: meta.added_at,
            },
        };
        st.wal.append(&record)?;
        let assigned = self.repo.add(spec, meta);
        debug_assert_eq!(assigned, RuleId(id));
        self.note_persisted_levels();
        self.emit(&record);
        self.maybe_compact(st);
        Ok(assigned)
    }

    /// Durably parses and adds every rule line in `text`.
    pub fn add_rules(&self, text: &str, meta: &RuleMeta) -> Result<Vec<RuleId>, StoreError> {
        let specs = self.parser.parse_rules(text).map_err(|e| StoreError::Parse(e.to_string()))?;
        specs.into_iter().map(|s| self.add_rule(s, meta.clone())).collect()
    }

    /// Durably disables a rule. `Ok(false)` = no-op (absent or already
    /// disabled), nothing logged.
    pub fn disable(&self, id: RuleId, reason: impl Into<String>) -> Result<bool, StoreError> {
        let reason = reason.into();
        let st = self.lock_state();
        match self.repo.get(id) {
            Some(rule) if rule.is_enabled() => {}
            _ => return Ok(false),
        }
        self.log_and_apply(st, WalOp::Disable { id: id.0, reason: reason.clone() }, |repo| {
            repo.disable(id, reason)
        })
    }

    /// Durably re-enables a rule. `Ok(false)` = no-op, nothing logged.
    pub fn enable(&self, id: RuleId) -> Result<bool, StoreError> {
        let st = self.lock_state();
        match self.repo.get(id) {
            Some(rule) if !rule.is_enabled() => {}
            _ => return Ok(false),
        }
        self.log_and_apply(st, WalOp::Enable { id: id.0 }, |repo| repo.enable(id))
    }

    /// Durably removes a rule. `Ok(false)` = absent, nothing logged.
    pub fn remove(&self, id: RuleId, reason: impl Into<String>) -> Result<bool, StoreError> {
        let reason = reason.into();
        let st = self.lock_state();
        if self.repo.get(id).is_none() {
            return Ok(false);
        }
        self.log_and_apply(st, WalOp::Remove { id: id.0, reason: reason.clone() }, |repo| {
            repo.remove(id, reason)
        })
    }

    /// Durably disables every enabled rule targeting `ty` (the per-type
    /// scale-down lever), one WAL record per rule. Stops at the first
    /// storage error; already-logged disables stand.
    pub fn disable_type(
        &self,
        ty: TypeId,
        reason: impl Into<String>,
    ) -> Result<Vec<RuleId>, StoreError> {
        let reason = reason.into();
        let mut affected = Vec::new();
        for rule in self.repo.full_snapshot() {
            if rule.is_enabled()
                && rule.target_type() == Some(ty)
                && self.disable(rule.id, reason.clone())?
            {
                affected.push(rule.id);
            }
        }
        Ok(affected)
    }

    /// Durably re-enables every disabled rule targeting `ty`.
    pub fn enable_type(&self, ty: TypeId) -> Result<Vec<RuleId>, StoreError> {
        let mut affected = Vec::new();
        for rule in self.repo.full_snapshot() {
            if !rule.is_enabled() && rule.target_type() == Some(ty) && self.enable(rule.id)? {
                affected.push(rule.id);
            }
        }
        Ok(affected)
    }

    fn log_and_apply(
        &self,
        mut st: MutexGuard<'_, WriterState>,
        op: WalOp,
        apply: impl FnOnce(&RuleRepository) -> bool,
    ) -> Result<bool, StoreError> {
        let record = WalRecord { revision: self.repo.revision() + 1, op };
        st.wal.append(&record)?;
        let applied = apply(&self.repo);
        debug_assert!(applied, "precondition checked under the mutation lock");
        self.note_persisted_levels();
        self.emit(&record);
        self.maybe_compact(st);
        Ok(true)
    }

    /// Consistent full-catalog image (rules + next id + revision) under the
    /// mutation lock, without writing anything. The leader serves this to
    /// cold or gap-stranded followers as the catch-up snapshot.
    pub fn snapshot_data(&self) -> CheckpointData {
        let _st = self.lock_state();
        self.build_checkpoint_data()
    }

    /// Reads the persisted replication epoch. `0` means "unknown" — no file,
    /// or one that failed its checksum — and by convention never matches a
    /// live leader's epoch, so an epoch-less node always resyncs by
    /// snapshot.
    pub fn load_epoch(&self) -> u64 {
        match self.storage.read(EPOCH_NAME) {
            Ok(bytes) => decode_epoch(&bytes).unwrap_or(0),
            Err(_) => 0,
        }
    }

    /// Durably records `epoch` (CRC-framed, temp → fsync → rename).
    pub fn save_epoch(&self, epoch: u64) -> Result<(), StoreError> {
        self.storage.remove(EPOCH_TMP)?;
        let payload = epoch.to_le_bytes();
        let mut bytes = Vec::with_capacity(12);
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        self.storage.append(EPOCH_TMP, &bytes)?;
        self.storage.sync(EPOCH_TMP)?;
        self.storage.rename(EPOCH_TMP, EPOCH_NAME)?;
        Ok(())
    }

    /// Advances and persists the epoch; returns the new value (always ≥ 1).
    /// A replication leader calls this once per process start so followers
    /// can tell a restarted leader — which may have lost an unsynced WAL
    /// tail and silently re-advanced its revisions — from the incarnation
    /// they were tailing.
    pub fn bump_epoch(&self) -> Result<u64, StoreError> {
        let next = self.load_epoch() + 1;
        self.save_epoch(next)?;
        Ok(next)
    }

    /// Replaces all local state with a leader-supplied snapshot: persists it
    /// as a local checkpoint (temp → fsync → rename), restores the
    /// repository from it, and resets the WAL. Afterwards the follower
    /// resumes the record stream from `data.revision`. A snapshot *older*
    /// than local state is installed too — the follower's contract is to
    /// mirror the leader, even one that lost an unsynced tail in a crash.
    ///
    /// Ordering is crash-window-safe. Higher-revision local checkpoints are
    /// removed first (recovery picks the newest by revision, so a divergent
    /// survivor would win the next scan and resurrect the fork), then the
    /// WAL is reset, then the snapshot checkpoint is written. A crash after
    /// any single step recovers to either the old consistent state or the
    /// installed snapshot — never a mix; the one residue (divergent WAL over
    /// an older checkpoint) is discarded by tolerant recovery.
    pub fn install_snapshot(&self, data: &CheckpointData) -> Result<(), StoreError> {
        let mut st = self.lock_state();
        let rules = rebuild_rules(&self.parser, &data.rules)?;
        checkpoint::remove_above(&*self.storage, data.revision)?;
        st.wal.reset()?;
        checkpoint::write(&*self.storage, data)?;
        self.repo.restore(rules, data.next_id, data.revision);
        checkpoint::housekeep(&*self.storage, &[], self.config.keep_checkpoints);
        let stats = CheckpointStats {
            revision: data.revision,
            rules: data.rules.len(),
            bytes: data.encode().len() as u64,
        };
        st.checkpoints_written += 1;
        st.last_checkpoint = stats;
        self.note_persisted_levels();
        if let Some(m) = &self.metrics {
            m.checkpoints.inc();
        }
        Ok(())
    }

    /// Applies one leader-shipped record: duplicates (revision already
    /// folded in) are skipped, the next revision is WAL-logged locally then
    /// applied, and anything else — a gap, an id mismatch, a no-op replay —
    /// is [`StoreError::Corrupt`], the follower's signal to resync from a
    /// snapshot. Same log-then-apply contract as first-hand mutations, so a
    /// follower restart recovers replicated edits from its *own* WAL.
    pub fn apply_replicated(&self, record: &WalRecord) -> Result<ReplayOutcome, StoreError> {
        let mut st = self.lock_state();
        let current = self.repo.revision();
        if record.revision <= current {
            return Ok(ReplayOutcome::Skipped);
        }
        if record.revision != current + 1 {
            return Err(StoreError::Corrupt(format!(
                "replication gap: local revision {current}, shipped record {}",
                record.revision
            )));
        }
        st.wal.append(record)?;
        apply_record(&self.repo, &self.parser, record)?;
        self.note_persisted_levels();
        self.emit(record);
        self.maybe_compact(st);
        Ok(ReplayOutcome::Applied)
    }

    fn maybe_compact(&self, st: MutexGuard<'_, WriterState>) {
        if self.config.checkpoint_every > 0 && st.wal.records() >= self.config.checkpoint_every {
            // Best-effort: compaction failure (e.g. injected rename fault)
            // leaves the WAL long but the acknowledged mutation intact; the
            // next mutation retries.
            let _ = self.checkpoint_locked(st);
        }
    }

    /// Writes a checkpoint of the current state and resets the WAL.
    /// Returns stats for the checkpoint written.
    pub fn checkpoint(&self) -> Result<CheckpointStats, StoreError> {
        self.checkpoint_locked(self.lock_state())
    }

    fn checkpoint_locked(
        &self,
        mut st: MutexGuard<'_, WriterState>,
    ) -> Result<CheckpointStats, StoreError> {
        let span = self.metrics.as_ref().map(|m| SpanTimer::start(&m.checkpoint_nanos));
        let data = self.build_checkpoint_data();
        let bytes = data.encode().len() as u64;
        checkpoint::write(&*self.storage, &data)?;
        // Checkpoint is published; stale WAL records are now redundant
        // (replay would skip them by revision), so a reset failure is
        // harmless beyond log length.
        let _ = st.wal.reset();
        checkpoint::housekeep(&*self.storage, &[], self.config.keep_checkpoints);
        let stats = CheckpointStats { revision: data.revision, rules: data.rules.len(), bytes };
        st.checkpoints_written += 1;
        st.last_checkpoint = stats;
        if let Some(m) = &self.metrics {
            m.checkpoints.inc();
        }
        if let Some(span) = span {
            span.finish();
        }
        Ok(stats)
    }

    /// Consistent catalog image. Callers must hold the mutation lock (or
    /// accept a torn read — no internal callers do).
    fn build_checkpoint_data(&self) -> CheckpointData {
        CheckpointData {
            revision: self.repo.revision(),
            next_id: self.repo.next_rule_id(),
            rules: self
                .repo
                .full_snapshot()
                .iter()
                .map(|r| CheckpointRule {
                    id: r.id.0,
                    source: r.source.clone(),
                    author: r.meta.author.clone(),
                    provenance: wal::encode_provenance(r.meta.provenance),
                    status: wal::encode_status(r.meta.status),
                    confidence: r.meta.confidence,
                    added_at: r.meta.added_at,
                })
                .collect(),
        }
    }
}

/// Rebuilds full [`Rule`] values from checkpoint entries by re-parsing each
/// DSL source line and re-attaching the persisted metadata.
fn rebuild_rules(parser: &RuleParser, entries: &[CheckpointRule]) -> Result<Vec<Rule>, StoreError> {
    let mut rules = Vec::with_capacity(entries.len());
    for e in entries {
        let spec = parser
            .parse_rule(&e.source)
            .map_err(|err| StoreError::Parse(format!("rule {}: {err}: {:?}", e.id, e.source)))?;
        rules.push(Rule {
            id: RuleId(e.id),
            condition: spec.condition,
            action: spec.action,
            meta: RuleMeta {
                author: e.author.clone(),
                provenance: wal::decode_provenance(e.provenance)?,
                status: wal::decode_status(e.status)?,
                confidence: e.confidence,
                added_at: e.added_at,
            },
            source: spec.source,
        });
    }
    Ok(rules)
}

/// Applies one replayed WAL record through the repository's public API and
/// verifies the result matches what the record claims (id and revision),
/// surfacing divergence as corruption instead of silently drifting.
fn apply_record(
    repo: &Arc<RuleRepository>,
    parser: &RuleParser,
    record: &WalRecord,
) -> Result<(), StoreError> {
    match &record.op {
        WalOp::Add { id, source, author, provenance, status, confidence, added_at } => {
            if repo.next_rule_id() != *id {
                return Err(StoreError::Corrupt(format!(
                    "replay id mismatch: log says {id}, repository would assign {}",
                    repo.next_rule_id()
                )));
            }
            let spec = parser
                .parse_rule(source)
                .map_err(|e| StoreError::Parse(format!("rule {id}: {e}: {source:?}")))?;
            let meta = RuleMeta {
                author: author.clone(),
                provenance: wal::decode_provenance(*provenance)?,
                status: wal::decode_status(*status)?,
                confidence: *confidence,
                added_at: *added_at,
            };
            repo.add(spec, meta);
        }
        WalOp::Disable { id, reason } => {
            if !repo.disable(RuleId(*id), reason.clone()) {
                return Err(StoreError::Corrupt(format!(
                    "replayed disable of rule {id} was a no-op"
                )));
            }
        }
        WalOp::Enable { id } => {
            if !repo.enable(RuleId(*id)) {
                return Err(StoreError::Corrupt(format!(
                    "replayed enable of rule {id} was a no-op"
                )));
            }
        }
        WalOp::Remove { id, reason } => {
            if !repo.remove(RuleId(*id), reason.clone()) {
                return Err(StoreError::Corrupt(format!(
                    "replayed remove of rule {id} was a no-op"
                )));
            }
        }
    }
    if repo.revision() != record.revision {
        return Err(StoreError::Corrupt(format!(
            "replay revision mismatch: log says {}, repository is at {}",
            record.revision,
            repo.revision()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;
    use rulekit_data::Taxonomy;

    fn parser() -> RuleParser {
        RuleParser::new(Taxonomy::builtin())
    }

    fn open(storage: &Arc<MemStorage>, config: DurableConfig) -> DurableRepository {
        let dyn_storage: Arc<dyn Storage> = Arc::clone(storage) as Arc<dyn Storage>;
        DurableRepository::open(dyn_storage, parser(), config).unwrap()
    }

    #[test]
    fn mutations_survive_reopen_without_checkpoint() {
        let storage = Arc::new(MemStorage::new());
        let config = DurableConfig { checkpoint_every: 0, ..DurableConfig::default() };
        let durable = open(&storage, config);
        let ids =
            durable.add_rules("rings? -> rings\nrugs? -> area rugs", &RuleMeta::default()).unwrap();
        durable.disable(ids[1], "drift").unwrap();
        let revision = durable.repository().revision();
        drop(durable);

        let reopened = open(&storage, config);
        let repo = reopened.repository();
        assert_eq!(repo.revision(), revision);
        assert_eq!(repo.len(), 2);
        assert!(repo.get(ids[0]).unwrap().is_enabled());
        assert!(!repo.get(ids[1]).unwrap().is_enabled());
        let report = reopened.recovery();
        assert_eq!(report.replayed, 3);
        assert_eq!(report.checkpoint_revision, 0);
    }

    #[test]
    fn expression_rules_survive_reopen_and_reuse_compiled_bytecode() {
        use rulekit_core::Condition;
        let storage = Arc::new(MemStorage::new());
        let config = DurableConfig { checkpoint_every: 0, ..DurableConfig::default() };
        let p = parser();
        let line = "rule: price < 20 && title ~ /braided/ => NOT area rugs";

        let dyn_storage: Arc<dyn Storage> = Arc::clone(&storage) as Arc<dyn Storage>;
        let durable = DurableRepository::open(dyn_storage, p.clone(), config).unwrap();
        let ids = durable.add_rules(line, &RuleMeta::default()).unwrap();
        drop(durable);
        assert_eq!(p.expr_cache().stats().misses, 1);

        // WAL replay re-parses the persisted source — expression rules come
        // back as compiled bytecode, via the shared cache (a hit, not a
        // recompile, because the process already compiled this source).
        let dyn_storage: Arc<dyn Storage> = Arc::clone(&storage) as Arc<dyn Storage>;
        let reopened = DurableRepository::open(dyn_storage, p.clone(), config).unwrap();
        let rule = reopened.repository().get(ids[0]).unwrap();
        assert_eq!(rule.source, line);
        assert!(matches!(rule.condition, Condition::Expr(_)));
        let stats = p.expr_cache().stats();
        assert_eq!(stats.misses, 1, "recovery recompiled the expression");
        assert!(stats.hits >= 1);

        // Checkpoint compaction and recovery-from-checkpoint round-trip the
        // rule too (checkpoints store the same source text).
        reopened.checkpoint().unwrap();
        drop(reopened);
        let dyn_storage: Arc<dyn Storage> = Arc::clone(&storage) as Arc<dyn Storage>;
        let again = DurableRepository::open(dyn_storage, p.clone(), config).unwrap();
        let rule = again.repository().get(ids[0]).unwrap();
        assert!(matches!(rule.condition, Condition::Expr(_)));
        assert_eq!(p.expr_cache().stats().misses, 1, "checkpoint rebuild recompiled");
    }

    #[test]
    fn checkpoint_resets_wal_and_recovers_alone() {
        let storage = Arc::new(MemStorage::new());
        let config = DurableConfig { checkpoint_every: 0, ..DurableConfig::default() };
        let durable = open(&storage, config);
        durable.add_rules("rings? -> rings\nrugs? -> area rugs", &RuleMeta::default()).unwrap();
        let stats = durable.checkpoint().unwrap();
        assert_eq!(stats.rules, 2);
        assert_eq!(durable.stats().wal_records, 0, "WAL reset after checkpoint");
        drop(durable);

        let reopened = open(&storage, config);
        assert_eq!(reopened.repository().len(), 2);
        let report = reopened.recovery();
        assert_eq!(report.checkpoint_rules, 2);
        assert_eq!(report.replayed, 0);
    }

    #[test]
    fn auto_compaction_triggers_on_record_count() {
        let storage = Arc::new(MemStorage::new());
        let config = DurableConfig { checkpoint_every: 4, ..DurableConfig::default() };
        let durable = open(&storage, config);
        let id = durable
            .add_rule(parser().parse_rule("rings? -> rings").unwrap(), RuleMeta::default())
            .unwrap();
        for _ in 0..3 {
            durable.disable(id, "churn").unwrap();
            durable.enable(id).unwrap();
        }
        assert!(durable.stats().checkpoints_written >= 1);
        assert!(durable.stats().wal_records < 4);
    }

    #[test]
    fn skipped_records_after_mid_compaction_crash() {
        let storage = Arc::new(MemStorage::new());
        let config = DurableConfig { checkpoint_every: 0, ..DurableConfig::default() };
        let durable = open(&storage, config);
        let ids =
            durable.add_rules("rings? -> rings\nrugs? -> area rugs", &RuleMeta::default()).unwrap();
        durable.disable(ids[0], "drift").unwrap();
        // Simulate crash between checkpoint publish and WAL reset: write the
        // checkpoint with the storage directly, leaving the WAL untouched.
        let data = CheckpointData {
            revision: durable.repository().revision(),
            next_id: durable.repository().next_rule_id(),
            rules: durable
                .repository()
                .full_snapshot()
                .iter()
                .map(|r| CheckpointRule {
                    id: r.id.0,
                    source: r.source.clone(),
                    author: r.meta.author.clone(),
                    provenance: wal::encode_provenance(r.meta.provenance),
                    status: wal::encode_status(r.meta.status),
                    confidence: r.meta.confidence,
                    added_at: r.meta.added_at,
                })
                .collect(),
        };
        checkpoint::write(&*storage, &data).unwrap();
        drop(durable);

        let reopened = open(&storage, config);
        let report = reopened.recovery();
        assert_eq!(report.skipped, 3, "all WAL records were already in the checkpoint");
        assert_eq!(report.replayed, 0);
        assert_eq!(reopened.repository().len(), 2);
        assert!(!reopened.repository().get(ids[0]).unwrap().is_enabled());
    }

    #[test]
    fn disable_type_logs_one_record_per_rule() {
        let storage = Arc::new(MemStorage::new());
        let config = DurableConfig { checkpoint_every: 0, ..DurableConfig::default() };
        let durable = open(&storage, config);
        durable
            .add_rules(
                "rings? -> rings\nwedding bands? -> rings\nrugs? -> area rugs",
                &RuleMeta::default(),
            )
            .unwrap();
        let tax = Taxonomy::builtin();
        let rings = tax.id_of("rings").unwrap();
        let affected = durable.disable_type(rings, "precision alarm").unwrap();
        assert_eq!(affected.len(), 2);
        drop(durable);

        let reopened = open(&storage, config);
        assert_eq!(reopened.recovery().replayed, 5, "3 adds + 2 disables");
        assert_eq!(reopened.repository().enabled_snapshot().len(), 1);
        let restored = reopened.enable_type(rings).unwrap();
        assert_eq!(restored.len(), 2);
    }

    #[test]
    fn noop_mutations_log_nothing() {
        let storage = Arc::new(MemStorage::new());
        let config = DurableConfig { checkpoint_every: 0, ..DurableConfig::default() };
        let durable = open(&storage, config);
        let id = durable
            .add_rule(parser().parse_rule("rings? -> rings").unwrap(), RuleMeta::default())
            .unwrap();
        assert!(!durable.enable(id).unwrap(), "already enabled");
        assert!(!durable.disable(RuleId(999), "ghost").unwrap());
        assert!(!durable.remove(RuleId(999), "ghost").unwrap());
        assert_eq!(durable.stats().wal_records, 1, "only the add was logged");
    }

    #[test]
    fn record_sink_sees_every_mutation_in_log_order() {
        let storage = Arc::new(MemStorage::new());
        let config = DurableConfig { checkpoint_every: 0, ..DurableConfig::default() };
        let durable = open(&storage, config);
        let seen: Arc<Mutex<Vec<WalRecord>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        durable.set_record_sink(Some(Arc::new(move |r: &WalRecord| {
            sink_seen.lock().unwrap().push(r.clone());
        })));
        let ids =
            durable.add_rules("rings? -> rings\nrugs? -> area rugs", &RuleMeta::default()).unwrap();
        durable.disable(ids[0], "drift").unwrap();
        assert!(!durable.enable(ids[1]).unwrap(), "no-op must not reach the sink");
        let records = seen.lock().unwrap().clone();
        assert_eq!(records.len(), 3);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.revision, i as u64 + 1, "sink sees contiguous revisions");
        }
        assert!(matches!(records[2].op, WalOp::Disable { .. }));
        durable.set_record_sink(None);
        durable.disable(ids[1], "quiet").unwrap();
        assert_eq!(seen.lock().unwrap().len(), 3, "cleared sink sees nothing");
    }

    #[test]
    fn apply_replicated_mirrors_leader_and_survives_reopen() {
        let config = DurableConfig { checkpoint_every: 0, ..DurableConfig::default() };
        let leader_storage = Arc::new(MemStorage::new());
        let leader = open(&leader_storage, config);
        let shipped: Arc<Mutex<Vec<WalRecord>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_shipped = Arc::clone(&shipped);
        leader.set_record_sink(Some(Arc::new(move |r: &WalRecord| {
            sink_shipped.lock().unwrap().push(r.clone());
        })));
        let ids =
            leader.add_rules("rings? -> rings\nrugs? -> area rugs", &RuleMeta::default()).unwrap();
        leader.disable(ids[0], "drift").unwrap();

        let follower_storage = Arc::new(MemStorage::new());
        let follower = open(&follower_storage, config);
        let records = shipped.lock().unwrap().clone();
        for r in &records {
            assert_eq!(follower.apply_replicated(r).unwrap(), ReplayOutcome::Applied);
        }
        assert_eq!(
            catalog_hash(leader.repository()),
            catalog_hash(follower.repository()),
            "follower mirrors leader"
        );
        // Duplicates after a resume are skipped, not re-applied.
        assert_eq!(follower.apply_replicated(&records[1]).unwrap(), ReplayOutcome::Skipped);
        // A gap is corruption — the resync signal.
        let mut gap = records[2].clone();
        gap.revision = 99;
        assert!(matches!(follower.apply_replicated(&gap), Err(StoreError::Corrupt(_))));

        // Replicated records went through the follower's own WAL.
        drop(follower);
        let reopened = open(&follower_storage, config);
        assert_eq!(catalog_hash(leader.repository()), catalog_hash(reopened.repository()));
        assert_eq!(reopened.recovery().replayed, 3);
    }

    #[test]
    fn install_snapshot_resets_follower_to_leader_image() {
        let config = DurableConfig { checkpoint_every: 0, ..DurableConfig::default() };
        let leader_storage = Arc::new(MemStorage::new());
        let leader = open(&leader_storage, config);
        let ids = leader
            .add_rules("rings? -> rings\nrugs? -> area rugs\nsofas? -> sofas", &RuleMeta::default())
            .unwrap();
        leader.remove(ids[2], "churn").unwrap();

        // Follower with unrelated local state (divergent trial data).
        let follower_storage = Arc::new(MemStorage::new());
        let follower = open(&follower_storage, config);
        follower.add_rules("bands? -> rings", &RuleMeta::default()).unwrap();

        let snap = leader.snapshot_data();
        follower.install_snapshot(&snap).unwrap();
        assert_eq!(catalog_hash(leader.repository()), catalog_hash(follower.repository()));
        assert_eq!(follower.stats().wal_records, 0, "WAL reset under the new checkpoint");

        // The stream resumes from the snapshot revision.
        let shipped: Arc<Mutex<Vec<WalRecord>>> = Arc::new(Mutex::new(Vec::new()));
        let sink_shipped = Arc::clone(&shipped);
        leader.set_record_sink(Some(Arc::new(move |r: &WalRecord| {
            sink_shipped.lock().unwrap().push(r.clone());
        })));
        leader.disable(ids[0], "post-snapshot").unwrap();
        for r in shipped.lock().unwrap().iter() {
            follower.apply_replicated(r).unwrap();
        }
        assert_eq!(catalog_hash(leader.repository()), catalog_hash(follower.repository()));

        // And the whole follower state survives its own crash/reopen.
        drop(follower);
        let reopened = open(&follower_storage, config);
        assert_eq!(catalog_hash(leader.repository()), catalog_hash(reopened.repository()));
    }

    #[test]
    fn install_snapshot_clears_stale_higher_checkpoints() {
        // Follower ahead of a restarted leader: its divergent state sits at a
        // *higher* revision, checkpointed locally. Installing the older
        // leader snapshot must not let that checkpoint win the next recovery
        // scan — even with keep_checkpoints: 1, where housekeeping retains
        // only the newest-by-revision survivor.
        let config =
            DurableConfig { checkpoint_every: 0, keep_checkpoints: 1, ..DurableConfig::default() };
        let leader_storage = Arc::new(MemStorage::new());
        let leader = open(&leader_storage, config);
        leader.add_rules("rings? -> rings\nrugs? -> area rugs", &RuleMeta::default()).unwrap();

        let follower_storage = Arc::new(MemStorage::new());
        let follower = open(&follower_storage, config);
        follower
            .add_rules("rings? -> rings\nrugs? -> area rugs\nsofas? -> sofas", &RuleMeta::default())
            .unwrap();
        follower.checkpoint().unwrap(); // divergent checkpoint at revision 3

        let snap = leader.snapshot_data();
        assert!(snap.revision < follower.repository().revision());
        follower.install_snapshot(&snap).unwrap();
        assert_eq!(catalog_hash(leader.repository()), catalog_hash(follower.repository()));
        drop(follower);

        let reopened = open(&follower_storage, config);
        assert_eq!(
            catalog_hash(leader.repository()),
            catalog_hash(reopened.repository()),
            "reopen must not resurrect the divergent higher-revision checkpoint"
        );
        assert_eq!(reopened.recovery().checkpoint_revision, snap.revision);
    }

    #[test]
    fn recovery_discards_non_applying_wal_suffix() {
        // The residue of an interrupted snapshot install: a checkpoint plus
        // WAL records from a *different* history above its revision. Open
        // must succeed, discard the suffix, and leave disk clean.
        let config = DurableConfig { checkpoint_every: 0, ..DurableConfig::default() };
        let storage = Arc::new(MemStorage::new());
        let durable = open(&storage, config);
        durable.add_rules("rings? -> rings\nrugs? -> area rugs", &RuleMeta::default()).unwrap();
        durable.checkpoint().unwrap(); // checkpoint at revision 2, WAL empty
        let revision = durable.repository().revision();
        drop(durable);

        // Divergent leftovers: a contiguous no-op (Enable of an already
        // enabled rule) and a gap record, appended straight to the WAL.
        let divergent = [
            WalRecord { revision: revision + 1, op: WalOp::Enable { id: 0 } },
            WalRecord { revision: revision + 5, op: WalOp::Disable { id: 1, reason: "x".into() } },
        ];
        for r in &divergent {
            storage.append(WAL_NAME, &r.encode_frame()).unwrap();
        }

        let reopened = open(&storage, config);
        let report = reopened.recovery();
        assert_eq!(report.discarded_records, 2, "whole divergent suffix discarded");
        assert_eq!(report.replayed, 0);
        assert_eq!(report.recovered_revision, revision);
        assert!(report.wal_stop_reason.as_deref().unwrap().contains("non-applying"));
        assert_eq!(reopened.repository().len(), 2);
        drop(reopened);

        // The suffix was truncated from disk: the next open is clean.
        let again = open(&storage, config);
        assert_eq!(again.recovery().discarded_records, 0);
        assert!(again.recovery().wal_stop_reason.is_none());
        assert_eq!(again.repository().revision(), revision);
    }

    #[test]
    fn epoch_persists_and_bumps() {
        let storage = Arc::new(MemStorage::new());
        let config = DurableConfig::default();
        let durable = open(&storage, config);
        assert_eq!(durable.load_epoch(), 0, "no epoch file yet");
        assert_eq!(durable.bump_epoch().unwrap(), 1);
        assert_eq!(durable.bump_epoch().unwrap(), 2);
        drop(durable);

        let reopened = open(&storage, config);
        assert_eq!(reopened.load_epoch(), 2, "epoch survives reopen");
        // Corruption degrades to 0 (unknown), never to a stale value.
        assert!(storage.flip_bit(EPOCH_NAME, 5), "corrupt a payload byte");
        assert_eq!(reopened.load_epoch(), 0);
        assert_eq!(reopened.bump_epoch().unwrap(), 1);
    }

    #[test]
    fn failed_append_is_not_applied() {
        use crate::fault::{FaultConfig, FaultyStorage};
        let mem: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let mut fc = FaultConfig::none(0);
        let faulty = Arc::new(FaultyStorage::new(Arc::clone(&mem), fc));
        let config = DurableConfig { checkpoint_every: 0, ..DurableConfig::default() };
        let durable =
            DurableRepository::open(Arc::clone(&faulty) as Arc<dyn Storage>, parser(), config)
                .unwrap();
        let id = durable
            .add_rule(parser().parse_rule("rings? -> rings").unwrap(), RuleMeta::default())
            .unwrap();

        // Flip to always-fail appends via a second wrapper? Simpler: the
        // config is immutable, so rebuild with append_error = 1.0 against
        // the same underlying bytes and a fresh DurableRepository.
        fc.append_error = 1.0;
        let faulty2 = Arc::new(FaultyStorage::new(Arc::clone(&mem), fc));
        faulty2.disarm();
        let durable2 =
            DurableRepository::open(Arc::clone(&faulty2) as Arc<dyn Storage>, parser(), config)
                .unwrap();
        faulty2.arm();
        let before = durable2.repository().revision();
        assert!(durable2.disable(id, "doomed").is_err());
        assert_eq!(durable2.repository().revision(), before, "unacknowledged op not applied");
        assert!(durable2.repository().get(id).unwrap().is_enabled());
    }
}
