//! Seeded fault injection for recovery testing: [`FaultyStorage`] wraps any
//! [`Storage`] and, driven by a deterministic RNG, makes appends tear,
//! fsyncs fail, and reads/renames return transient I/O errors. The same
//! seed always produces the same fault schedule, so a failing fuzz cycle
//! reproduces exactly from its seed.

use std::sync::{Arc, Mutex};

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::storage::Storage;

/// Fault probabilities (each in `[0, 1]`) plus the RNG seed.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// P(append fails without persisting anything).
    pub append_error: f64,
    /// P(append tears: a strict prefix persists, then the call errors).
    pub partial_append: f64,
    /// P(fsync fails; bytes stay in the volatile tail).
    pub sync_error: f64,
    /// P(read fails transiently).
    pub read_error: f64,
    /// P(rename fails before doing anything).
    pub rename_error: f64,
}

impl FaultConfig {
    /// A schedule with every fault class enabled at moderate rates —
    /// the default profile for recovery fuzzing.
    pub fn aggressive(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            append_error: 0.05,
            partial_append: 0.10,
            sync_error: 0.08,
            read_error: 0.0,
            rename_error: 0.05,
        }
    }

    /// No faults (wrapper becomes a transparent pass-through).
    pub fn none(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            append_error: 0.0,
            partial_append: 0.0,
            sync_error: 0.0,
            read_error: 0.0,
            rename_error: 0.0,
        }
    }
}

/// Counters for how many faults actually fired.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Appends that failed with nothing persisted.
    pub append_errors: u64,
    /// Appends that persisted a strict prefix then errored.
    pub partial_appends: u64,
    /// Fsyncs that failed.
    pub sync_errors: u64,
    /// Reads that failed transiently.
    pub read_errors: u64,
    /// Renames that failed.
    pub rename_errors: u64,
}

impl FaultStats {
    /// Total injected faults across all classes.
    pub fn total(&self) -> u64 {
        self.append_errors
            + self.partial_appends
            + self.sync_errors
            + self.read_errors
            + self.rename_errors
    }
}

struct FaultState {
    rng: StdRng,
    stats: FaultStats,
    armed: bool,
}

/// A [`Storage`] decorator that injects deterministic, seeded faults.
/// Construct with [`FaultyStorage::new`]; call [`FaultyStorage::disarm`]
/// during recovery phases where the test wants clean I/O and
/// [`FaultyStorage::arm`] to resume the schedule.
pub struct FaultyStorage {
    inner: Arc<dyn Storage>,
    config: FaultConfig,
    state: Mutex<FaultState>,
}

fn injected(kind: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault: {kind}"))
}

impl FaultyStorage {
    /// Wraps `inner` with the fault schedule derived from `config.seed`.
    pub fn new(inner: Arc<dyn Storage>, config: FaultConfig) -> FaultyStorage {
        FaultyStorage {
            inner,
            config,
            state: Mutex::new(FaultState {
                rng: StdRng::seed_from_u64(config.seed),
                stats: FaultStats::default(),
                armed: true,
            }),
        }
    }

    /// The wrapped storage (e.g. to crash a [`MemStorage`] underneath).
    ///
    /// [`MemStorage`]: crate::storage::MemStorage
    pub fn inner(&self) -> &Arc<dyn Storage> {
        &self.inner
    }

    /// Fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.lock().stats
    }

    /// Suspends fault injection (recovery/verification phases).
    pub fn disarm(&self) {
        self.lock().armed = false;
    }

    /// Resumes fault injection.
    pub fn arm(&self) {
        self.lock().armed = true;
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Storage for FaultyStorage {
    fn append(&self, name: &str, data: &[u8]) -> std::io::Result<()> {
        {
            let mut st = self.lock();
            if st.armed {
                if st.rng.gen_bool(self.config.append_error) {
                    st.stats.append_errors += 1;
                    return Err(injected("append dropped"));
                }
                if !data.is_empty() && st.rng.gen_bool(self.config.partial_append) {
                    st.stats.partial_appends += 1;
                    let keep = st.rng.gen_range(0..data.len());
                    drop(st);
                    // Persist a strict prefix, then report failure — a torn
                    // write the caller must treat as unacknowledged.
                    self.inner.append(name, &data[..keep])?;
                    return Err(injected("append torn"));
                }
            }
        }
        self.inner.append(name, data)
    }

    fn read(&self, name: &str) -> std::io::Result<Vec<u8>> {
        {
            let mut st = self.lock();
            if st.armed && st.rng.gen_bool(self.config.read_error) {
                st.stats.read_errors += 1;
                return Err(injected("read failed"));
            }
        }
        self.inner.read(name)
    }

    fn sync(&self, name: &str) -> std::io::Result<()> {
        {
            let mut st = self.lock();
            if st.armed && st.rng.gen_bool(self.config.sync_error) {
                st.stats.sync_errors += 1;
                return Err(injected("fsync failed"));
            }
        }
        self.inner.sync(name)
    }

    fn truncate(&self, name: &str, len: u64) -> std::io::Result<()> {
        // Truncate is recovery's repair primitive; faulting it would only
        // retry the same repair, so it passes through.
        self.inner.truncate(name, len)
    }

    fn rename(&self, from: &str, to: &str) -> std::io::Result<()> {
        {
            let mut st = self.lock();
            if st.armed && st.rng.gen_bool(self.config.rename_error) {
                st.stats.rename_errors += 1;
                return Err(injected("rename failed"));
            }
        }
        self.inner.rename(from, to)
    }

    fn remove(&self, name: &str) -> std::io::Result<()> {
        self.inner.remove(name)
    }

    fn list(&self) -> std::io::Result<Vec<String>> {
        self.inner.list()
    }

    fn len(&self, name: &str) -> std::io::Result<Option<u64>> {
        self.inner.len(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn run_schedule(seed: u64) -> (FaultStats, Vec<u8>) {
        let mem: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let faulty = FaultyStorage::new(Arc::clone(&mem), FaultConfig::aggressive(seed));
        for i in 0..200u8 {
            let _ = faulty.append("wal", &[i; 8]);
            let _ = faulty.sync("wal");
        }
        let data = mem.read("wal").unwrap_or_default();
        (faulty.stats(), data)
    }

    #[test]
    fn same_seed_same_schedule() {
        let (stats_a, data_a) = run_schedule(7);
        let (stats_b, data_b) = run_schedule(7);
        assert_eq!(stats_a, stats_b);
        assert_eq!(data_a, data_b);
        assert!(stats_a.total() > 0, "aggressive profile should fire at least once in 400 ops");
    }

    #[test]
    fn different_seeds_diverge() {
        let (stats_a, _) = run_schedule(1);
        let (stats_b, _) = run_schedule(2);
        // Counters could theoretically collide, but full equality of both
        // stats and surviving bytes is vanishingly unlikely.
        let (_, data_a) = run_schedule(1);
        let (_, data_b) = run_schedule(2);
        assert!(stats_a != stats_b || data_a != data_b);
    }

    #[test]
    fn partial_append_persists_strict_prefix() {
        let mem: Arc<dyn Storage> = Arc::new(MemStorage::new());
        // partial_append = 1.0 → every append tears.
        let config = FaultConfig {
            seed: 3,
            append_error: 0.0,
            partial_append: 1.0,
            sync_error: 0.0,
            read_error: 0.0,
            rename_error: 0.0,
        };
        let faulty = FaultyStorage::new(Arc::clone(&mem), config);
        assert!(faulty.append("wal", &[1, 2, 3, 4, 5, 6, 7, 8]).is_err());
        let survived = mem.read("wal").unwrap_or_default();
        assert!(survived.len() < 8, "torn append must persist a strict prefix");
    }

    #[test]
    fn disarm_suspends_faults() {
        let mem: Arc<dyn Storage> = Arc::new(MemStorage::new());
        let config = FaultConfig {
            seed: 3,
            append_error: 1.0,
            partial_append: 0.0,
            sync_error: 1.0,
            read_error: 1.0,
            rename_error: 1.0,
        };
        let faulty = FaultyStorage::new(Arc::clone(&mem), config);
        assert!(faulty.append("wal", b"x").is_err());
        faulty.disarm();
        faulty.append("wal", b"x").unwrap();
        faulty.sync("wal").unwrap();
        assert_eq!(faulty.read("wal").unwrap(), b"x");
        faulty.arm();
        assert!(faulty.append("wal", b"x").is_err());
        assert_eq!(faulty.stats().append_errors, 2);
    }
}
