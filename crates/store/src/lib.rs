//! # rulekit-store
//!
//! The durability layer under [`rulekit_core::RuleRepository`]: the paper's
//! §3.3 rule corpora are long-lived production assets — Chimera's ~20k
//! hand-written rules accumulated over years of analyst edits — so the rule
//! store must survive process death without losing a single acknowledged
//! edit. This crate provides:
//!
//! - **[`Storage`]** — a tiny append/read/fsync/atomic-rename abstraction
//!   with a real file backend ([`FileStorage`]) and a deterministic
//!   in-memory backend ([`MemStorage`]) whose `crash()` models
//!   kernel-page-cache loss (synced prefix survives, unsynced tail is
//!   partially dropped).
//! - **Write-ahead log** ([`wal`]) — every repository mutation (add /
//!   disable / enable / remove, including per-type scale-downs decomposed
//!   to their per-rule edits) is a length-prefixed, CRC-32-checksummed,
//!   revision-stamped record, appended under a configurable
//!   [`FsyncPolicy`].
//! - **Checkpoints** ([`checkpoint`]) — periodic compaction serializes the
//!   full rule set (DSL source + metadata, enabled *and* disabled) via
//!   write-temp → fsync → atomic-rename, then resets the WAL; recovery
//!   replays only records newer than the checkpoint, so a crash between
//!   rename and reset cannot double-apply.
//! - **Recovery** — [`DurableRepository::open`] loads the newest *valid*
//!   checkpoint (corrupt candidates are skipped), replays the WAL tail,
//!   and truncates at the first torn or checksum-corrupt record instead of
//!   failing — a half-written tail can never be served.
//! - **Fault injection** ([`FaultyStorage`]) — a seeded wrapper that
//!   injects partial writes, fsync failures, and transient I/O errors, so
//!   the recovery fuzz can crash-and-reopen the repository thousands of
//!   times and assert that no acknowledged mutation is ever lost.
//!
//! The serving tier consumes this through `rulekit_serve::DurableProvider`:
//! a restarted service recovers its rules and rebuilds a compiled snapshot
//! before admitting traffic.

pub mod checkpoint;
pub mod codec;
pub mod crc;
pub mod durable;
pub mod fault;
pub mod obs;
pub mod storage;
pub mod wal;

pub use checkpoint::{CheckpointData, CheckpointRule, CheckpointStats};
pub use crc::crc32;
pub use durable::{
    catalog_hash, DurableConfig, DurableRepository, FsyncPolicy, RecordSink, RecoveryReport,
    ReplayOutcome, StoreStats, WAL_NAME,
};
pub use fault::{FaultConfig, FaultStats, FaultyStorage};
pub use obs::StoreMetrics;
pub use storage::{FileStorage, MemStorage, Storage, StoreError};
pub use wal::{WalOp, WalRecord, WalScan, WalWriter};
