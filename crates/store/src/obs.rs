//! Durability telemetry: WAL append/fsync latency, checkpoint timing, and
//! recovery accounting over a shared [`Registry`].
//!
//! Two metric families with deliberately different semantics:
//!
//! - **Work counters and latency histograms** (`*_total`, `*_nanos`) count
//!   operations *performed by this process* — appends, fsyncs, checkpoints,
//!   records replayed during an open. They accumulate.
//! - **Persisted-state gauges** (`rulekit_store_persisted_*`,
//!   `rulekit_store_wal_records`) are **set** to the recovered/current
//!   level, never incremented. Crash recovery replays the WAL through the
//!   normal mutation API, so if recovery *incremented* per-entry metrics, a
//!   crash-reopen-crash-reopen cycle would double- and triple-count rules
//!   that were persisted exactly once. Setting the gauge from recovered
//!   state makes recovery idempotent by construction — the regression test
//!   in `tests/recovery.rs` reopens twice and asserts the level is flat.

use rulekit_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Metric handles for one durable repository (or one WAL writer).
pub struct StoreMetrics {
    /// `storage.append` latency per WAL record (nanoseconds).
    pub wal_append_nanos: Histogram,
    /// `storage.sync` latency per explicit fsync (nanoseconds).
    pub wal_fsync_nanos: Histogram,
    /// WAL records successfully appended (acknowledged) by this process.
    pub wal_appends: Counter,
    /// Full checkpoint latency: snapshot + encode + write + WAL reset.
    pub checkpoint_nanos: Histogram,
    /// Checkpoints written by this process.
    pub checkpoints: Counter,
    /// WAL records applied during recovery opens.
    pub replay_applied: Counter,
    /// WAL records skipped during recovery (already in the checkpoint).
    pub replay_skipped: Counter,
    /// Recovery opens performed against this registry.
    pub recoveries: Counter,
    /// Rules (any status) in the repository — a level, set on recovery and
    /// after every acknowledged mutation.
    pub persisted_rules: Gauge,
    /// Repository revision — a level, set, never incremented.
    pub persisted_revision: Gauge,
    /// Acknowledged records currently in the WAL (drops to 0 on reset).
    pub wal_records: Gauge,
}

impl StoreMetrics {
    /// Registers the store metric family in `registry`.
    pub fn register(registry: &Registry) -> Arc<StoreMetrics> {
        Arc::new(StoreMetrics {
            wal_append_nanos: registry.histogram("rulekit_store_wal_append_nanos"),
            wal_fsync_nanos: registry.histogram("rulekit_store_wal_fsync_nanos"),
            wal_appends: registry.counter("rulekit_store_wal_appends_total"),
            checkpoint_nanos: registry.histogram("rulekit_store_checkpoint_nanos"),
            checkpoints: registry.counter("rulekit_store_checkpoints_total"),
            replay_applied: registry.counter("rulekit_store_replay_applied_total"),
            replay_skipped: registry.counter("rulekit_store_replay_skipped_total"),
            recoveries: registry.counter("rulekit_store_recoveries_total"),
            persisted_rules: registry.gauge("rulekit_store_persisted_rules"),
            persisted_revision: registry.gauge("rulekit_store_persisted_revision"),
            wal_records: registry.gauge("rulekit_store_wal_records"),
        })
    }

    /// Metrics attached to no registry (tests, ad-hoc measurement).
    pub fn detached() -> Arc<StoreMetrics> {
        Arc::new(StoreMetrics {
            wal_append_nanos: Histogram::new(),
            wal_fsync_nanos: Histogram::new(),
            wal_appends: Counter::new(),
            checkpoint_nanos: Histogram::new(),
            checkpoints: Counter::new(),
            replay_applied: Counter::new(),
            replay_skipped: Counter::new(),
            recoveries: Counter::new(),
            persisted_rules: Gauge::new(),
            persisted_revision: Gauge::new(),
            wal_records: Gauge::new(),
        })
    }
}
