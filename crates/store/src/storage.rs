//! The storage abstraction the WAL and checkpoints are built on: a flat
//! namespace of named byte files supporting append, whole-file read,
//! explicit fsync, truncate, and atomic rename — the minimal contract a
//! crash-consistent log needs. Two backends: [`FileStorage`] over a real
//! directory, and [`MemStorage`], a deterministic in-memory model whose
//! `crash()` simulates kernel-page-cache loss for recovery fuzzing.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::Mutex;

/// Errors from the durability layer.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed (possibly transiently, under fault
    /// injection). The mutation it carried was *not* acknowledged.
    Io(std::io::Error),
    /// Persisted bytes failed validation (bad magic, impossible lengths,
    /// checksum mismatch) somewhere recovery could not repair by
    /// truncation.
    Corrupt(String),
    /// A recovered rule's DSL source no longer parses (e.g. a dictionary
    /// rule whose dictionary was not re-registered before `open`).
    Parse(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "storage i/o error: {e}"),
            StoreError::Corrupt(m) => write!(f, "corrupt durable state: {m}"),
            StoreError::Parse(m) => write!(f, "recovered rule failed to parse: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// A flat namespace of append-only-ish byte files. All methods take `&self`
/// (backends synchronize internally); writers above this layer serialize
/// mutations themselves.
pub trait Storage: Send + Sync {
    /// Appends `data` at the end of `name`, creating it if absent. A crash
    /// or injected fault may persist any prefix of `data` (torn write);
    /// callers must frame and checksum their records.
    fn append(&self, name: &str, data: &[u8]) -> std::io::Result<()>;

    /// Reads the entire contents of `name`. Missing file → `NotFound`.
    fn read(&self, name: &str) -> std::io::Result<Vec<u8>>;

    /// Forces previously appended bytes of `name` to durable media.
    fn sync(&self, name: &str) -> std::io::Result<()>;

    /// Truncates `name` to `len` bytes (recovery chops torn tails with
    /// this). Truncating a missing file is an error.
    fn truncate(&self, name: &str, len: u64) -> std::io::Result<()>;

    /// Atomically replaces `to` with `from`. After return, `to` durably has
    /// `from`'s (previously synced) contents and `from` is gone — the
    /// publish step of write-temp-then-rename checkpointing.
    fn rename(&self, from: &str, to: &str) -> std::io::Result<()>;

    /// Deletes `name`. Deleting a missing file is *not* an error (idempotent
    /// cleanup of temp files).
    fn remove(&self, name: &str) -> std::io::Result<()>;

    /// All file names present, in unspecified order.
    fn list(&self) -> std::io::Result<Vec<String>>;

    /// Current length of `name` in bytes, or `None` if absent.
    fn len(&self, name: &str) -> std::io::Result<Option<u64>>;
}

// ---------------------------------------------------------------------------
// File backend
// ---------------------------------------------------------------------------

/// [`Storage`] over a real directory. Append handles are cached so the WAL
/// hot path pays one `write(2)` per record, not an open/close pair; any
/// structural operation (truncate / rename / remove) drops the cached
/// handle first.
pub struct FileStorage {
    dir: PathBuf,
    appenders: Mutex<HashMap<String, File>>,
}

impl FileStorage {
    /// Opens (creating if needed) `dir` as a storage root.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<FileStorage> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileStorage { dir, appenders: Mutex::new(HashMap::new()) })
    }

    /// The backing directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    fn drop_appender(&self, name: &str) {
        self.appenders.lock().unwrap_or_else(|e| e.into_inner()).remove(name);
    }

    /// Fsyncs the directory itself so renames/creates are durable. Best
    /// effort: some platforms cannot open directories for sync.
    fn sync_dir(&self) {
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
    }
}

impl Storage for FileStorage {
    fn append(&self, name: &str, data: &[u8]) -> std::io::Result<()> {
        let mut appenders = self.appenders.lock().unwrap_or_else(|e| e.into_inner());
        if !appenders.contains_key(name) {
            let file = OpenOptions::new().create(true).append(true).open(self.path(name))?;
            appenders.insert(name.to_string(), file);
        }
        let file = appenders.get_mut(name).expect("inserted above");
        file.write_all(data)
    }

    fn read(&self, name: &str) -> std::io::Result<Vec<u8>> {
        let mut buf = Vec::new();
        File::open(self.path(name))?.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn sync(&self, name: &str) -> std::io::Result<()> {
        let mut appenders = self.appenders.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(file) = appenders.get_mut(name) {
            return file.sync_data();
        }
        drop(appenders);
        // Not currently open for append — sync via a fresh handle.
        File::open(self.path(name))?.sync_data()
    }

    fn truncate(&self, name: &str, len: u64) -> std::io::Result<()> {
        self.drop_appender(name);
        let file = OpenOptions::new().write(true).open(self.path(name))?;
        file.set_len(len)?;
        file.sync_data()
    }

    fn rename(&self, from: &str, to: &str) -> std::io::Result<()> {
        self.drop_appender(from);
        self.drop_appender(to);
        std::fs::rename(self.path(from), self.path(to))?;
        self.sync_dir();
        Ok(())
    }

    fn remove(&self, name: &str) -> std::io::Result<()> {
        self.drop_appender(name);
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => {
                self.sync_dir();
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn list(&self) -> std::io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                if let Some(name) = entry.file_name().to_str() {
                    names.push(name.to_string());
                }
            }
        }
        Ok(names)
    }

    fn len(&self, name: &str) -> std::io::Result<Option<u64>> {
        match std::fs::metadata(self.path(name)) {
            Ok(m) => Ok(Some(m.len())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

// ---------------------------------------------------------------------------
// In-memory backend with crash simulation
// ---------------------------------------------------------------------------

#[derive(Default, Clone)]
struct MemFile {
    data: Vec<u8>,
    /// Bytes guaranteed durable (`sync` moves this to `data.len()`).
    synced: usize,
}

/// Deterministic in-memory [`Storage`]. Tracks, per file, how many bytes
/// have been fsynced; [`MemStorage::crash`] keeps the synced prefix and a
/// caller-chosen portion of the unsynced tail — exactly the state a real
/// file can be in after power loss (the kernel may have written back any
/// prefix of the dirty pages). Rename is modeled as atomic and durable,
/// matching rename-onto-fsynced-file semantics on a journaling filesystem.
#[derive(Default)]
pub struct MemStorage {
    files: Mutex<HashMap<String, MemFile>>,
}

impl MemStorage {
    /// An empty in-memory store.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// Simulates power loss: for every file, the synced prefix survives
    /// intact and the unsynced tail is cut at an arbitrary point chosen by
    /// `keep` (called with the file name and the unsynced byte count;
    /// returns how many of those bytes survive). The caller drives `keep`
    /// from a seeded RNG for deterministic fuzzing.
    pub fn crash(&self, mut keep: impl FnMut(&str, usize) -> usize) {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        for (name, file) in files.iter_mut() {
            let unsynced = file.data.len() - file.synced;
            if unsynced > 0 {
                let kept = keep(name, unsynced).min(unsynced);
                file.data.truncate(file.synced + kept);
            }
            file.synced = file.data.len();
        }
    }

    /// Total bytes across all files (diagnostics).
    pub fn total_bytes(&self) -> usize {
        let files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        files.values().map(|f| f.data.len()).sum()
    }

    /// Flips one bit at `offset` in `name` (corruption-matrix tests).
    pub fn flip_bit(&self, name: &str, offset: usize) -> bool {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        match files.get_mut(name) {
            Some(f) if offset < f.data.len() => {
                f.data[offset] ^= 0x01;
                true
            }
            _ => false,
        }
    }
}

fn not_found(name: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::NotFound, format!("no such file: {name}"))
}

impl Storage for MemStorage {
    fn append(&self, name: &str, data: &[u8]) -> std::io::Result<()> {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        files.entry(name.to_string()).or_default().data.extend_from_slice(data);
        Ok(())
    }

    fn read(&self, name: &str) -> std::io::Result<Vec<u8>> {
        let files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        files.get(name).map(|f| f.data.clone()).ok_or_else(|| not_found(name))
    }

    fn sync(&self, name: &str) -> std::io::Result<()> {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        let file = files.get_mut(name).ok_or_else(|| not_found(name))?;
        file.synced = file.data.len();
        Ok(())
    }

    fn truncate(&self, name: &str, len: u64) -> std::io::Result<()> {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        let file = files.get_mut(name).ok_or_else(|| not_found(name))?;
        file.data.truncate(len as usize);
        file.synced = file.synced.min(file.data.len());
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> std::io::Result<()> {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        let mut file = files.remove(from).ok_or_else(|| not_found(from))?;
        file.synced = file.data.len(); // rename publishes durably
        files.insert(to.to_string(), file);
        Ok(())
    }

    fn remove(&self, name: &str) -> std::io::Result<()> {
        let mut files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        files.remove(name);
        Ok(())
    }

    fn list(&self) -> std::io::Result<Vec<String>> {
        let files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        Ok(files.keys().cloned().collect())
    }

    fn len(&self, name: &str) -> std::io::Result<Option<u64>> {
        let files = self.files.lock().unwrap_or_else(|e| e.into_inner());
        Ok(files.get(name).map(|f| f.data.len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(storage: &dyn Storage) {
        storage.append("a", b"hello ").unwrap();
        storage.append("a", b"world").unwrap();
        assert_eq!(storage.read("a").unwrap(), b"hello world");
        assert_eq!(storage.len("a").unwrap(), Some(11));
        storage.truncate("a", 5).unwrap();
        assert_eq!(storage.read("a").unwrap(), b"hello");
        storage.sync("a").unwrap();
        storage.rename("a", "b").unwrap();
        assert!(storage.read("a").is_err());
        assert_eq!(storage.read("b").unwrap(), b"hello");
        assert!(storage.list().unwrap().contains(&"b".to_string()));
        storage.remove("b").unwrap();
        storage.remove("b").unwrap(); // idempotent
        assert_eq!(storage.len("b").unwrap(), None);
    }

    #[test]
    fn mem_storage_roundtrip() {
        roundtrip(&MemStorage::new());
    }

    #[test]
    fn file_storage_roundtrip() {
        let dir = std::env::temp_dir()
            .join(format!("rulekit-store-test-{}", std::process::id()))
            .join("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let storage = FileStorage::open(&dir).unwrap();
        roundtrip(&storage);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mem_crash_drops_unsynced_tail() {
        let s = MemStorage::new();
        s.append("wal", b"durable").unwrap();
        s.sync("wal").unwrap();
        s.append("wal", b" volatile").unwrap();
        // Keep 3 of the 9 unsynced bytes: a torn tail.
        s.crash(|_, unsynced| {
            assert_eq!(unsynced, 9);
            3
        });
        assert_eq!(s.read("wal").unwrap(), b"durable vo");
        // After crash everything remaining counts as durable.
        s.crash(|_, _| 0);
        assert_eq!(s.read("wal").unwrap(), b"durable vo");
    }

    #[test]
    fn mem_rename_is_durable() {
        let s = MemStorage::new();
        s.append("tmp", b"checkpoint-bytes").unwrap();
        s.rename("tmp", "final").unwrap();
        s.crash(|_, _| 0);
        assert_eq!(s.read("final").unwrap(), b"checkpoint-bytes");
    }

    #[test]
    fn file_append_handle_survives_interleaved_reads() {
        let dir = std::env::temp_dir()
            .join(format!("rulekit-store-test-{}", std::process::id()))
            .join("interleave");
        let _ = std::fs::remove_dir_all(&dir);
        let storage = FileStorage::open(&dir).unwrap();
        for i in 0..10u8 {
            storage.append("wal", &[i]).unwrap();
            assert_eq!(storage.read("wal").unwrap().len(), i as usize + 1);
        }
        storage.truncate("wal", 4).unwrap();
        storage.append("wal", &[99]).unwrap();
        assert_eq!(storage.read("wal").unwrap(), vec![0, 1, 2, 3, 99]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
