//! The write-ahead log: one length-prefixed, CRC-checksummed, revision-
//! stamped record per repository mutation.
//!
//! Frame layout (all little-endian):
//!
//! ```text
//! [ payload_len: u32 ][ crc32(payload): u32 ][ payload: payload_len bytes ]
//! payload = [ revision: u64 ][ kind: u8 ][ kind-specific fields ]
//! ```
//!
//! The reader ([`scan`]) accepts the longest valid prefix and reports the
//! first torn or checksum-corrupt offset; recovery truncates there instead
//! of failing — a half-written tail (the normal state after a crash) is
//! repaired, never served. The writer ([`WalWriter`]) tracks the
//! acknowledged byte length and, after any failed append (which may have
//! persisted a partial frame), truncates the garbage tail before the next
//! record goes out, so one transient fault cannot poison later appends.

use crate::codec::{put_str, put_u32, put_u64, Cursor};
use crate::crc::crc32;
use crate::durable::FsyncPolicy;
use crate::obs::StoreMetrics;
use crate::storage::{Storage, StoreError};
use rulekit_obs::SpanTimer;
use std::sync::Arc;

/// Cap on a single record's payload; anything larger in a length prefix is
/// treated as corruption rather than an allocation request.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

const KIND_ADD: u8 = 1;
const KIND_DISABLE: u8 = 2;
const KIND_ENABLE: u8 = 3;
const KIND_REMOVE: u8 = 4;

/// One durable repository mutation. Per-type scale-downs are decomposed
/// into their per-rule `Disable`/`Enable` edits before logging, so replay
/// is a flat, order-faithful stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The repository revision *after* applying this mutation (1-based).
    /// Replay uses this to skip records already folded into a checkpoint
    /// and to detect gaps.
    pub revision: u64,
    /// The mutation itself.
    pub op: WalOp,
}

/// The mutation payload of a [`WalRecord`].
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// Rule added. Carries everything needed to rebuild the rule: the DSL
    /// source line plus the metadata the repository stamped on it.
    Add {
        /// Assigned rule id (must match the id replay re-assigns).
        id: u64,
        /// DSL source line.
        source: String,
        /// Author from [`rulekit_core::RuleMeta`].
        author: String,
        /// Provenance, encoded via [`encode_provenance`].
        provenance: u8,
        /// Status at add time (0 enabled / 1 disabled).
        status: u8,
        /// Confidence score.
        confidence: f64,
        /// Revision at which the rule was added.
        added_at: u64,
    },
    /// Rule disabled.
    Disable {
        /// Rule id.
        id: u64,
        /// Analyst-facing reason.
        reason: String,
    },
    /// Rule re-enabled.
    Enable {
        /// Rule id.
        id: u64,
    },
    /// Rule permanently removed.
    Remove {
        /// Rule id.
        id: u64,
        /// Analyst-facing reason.
        reason: String,
    },
}

/// Maps [`rulekit_core::Provenance`] to its wire byte.
pub fn encode_provenance(p: rulekit_core::Provenance) -> u8 {
    match p {
        rulekit_core::Provenance::Analyst => 0,
        rulekit_core::Provenance::Developer => 1,
        rulekit_core::Provenance::Mined => 2,
        rulekit_core::Provenance::Curation => 3,
        rulekit_core::Provenance::Crowd => 4,
    }
}

/// Inverse of [`encode_provenance`].
pub fn decode_provenance(b: u8) -> Result<rulekit_core::Provenance, StoreError> {
    Ok(match b {
        0 => rulekit_core::Provenance::Analyst,
        1 => rulekit_core::Provenance::Developer,
        2 => rulekit_core::Provenance::Mined,
        3 => rulekit_core::Provenance::Curation,
        4 => rulekit_core::Provenance::Crowd,
        other => return Err(StoreError::Corrupt(format!("unknown provenance byte {other}"))),
    })
}

/// Maps [`rulekit_core::RuleStatus`] to its wire byte.
pub fn encode_status(s: rulekit_core::RuleStatus) -> u8 {
    match s {
        rulekit_core::RuleStatus::Enabled => 0,
        rulekit_core::RuleStatus::Disabled => 1,
    }
}

/// Inverse of [`encode_status`].
pub fn decode_status(b: u8) -> Result<rulekit_core::RuleStatus, StoreError> {
    Ok(match b {
        0 => rulekit_core::RuleStatus::Enabled,
        1 => rulekit_core::RuleStatus::Disabled,
        other => return Err(StoreError::Corrupt(format!("unknown status byte {other}"))),
    })
}

impl WalRecord {
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        put_u64(&mut out, self.revision);
        match &self.op {
            WalOp::Add { id, source, author, provenance, status, confidence, added_at } => {
                out.push(KIND_ADD);
                put_u64(&mut out, *id);
                put_str(&mut out, source);
                put_str(&mut out, author);
                out.push(*provenance);
                out.push(*status);
                crate::codec::put_f64(&mut out, *confidence);
                put_u64(&mut out, *added_at);
            }
            WalOp::Disable { id, reason } => {
                out.push(KIND_DISABLE);
                put_u64(&mut out, *id);
                put_str(&mut out, reason);
            }
            WalOp::Enable { id } => {
                out.push(KIND_ENABLE);
                put_u64(&mut out, *id);
            }
            WalOp::Remove { id, reason } => {
                out.push(KIND_REMOVE);
                put_u64(&mut out, *id);
                put_str(&mut out, reason);
            }
        }
        out
    }

    /// Encodes the record as a complete framed entry (length + CRC +
    /// payload), ready to append.
    pub fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decodes exactly one framed record from `bytes` (the inverse of
    /// [`WalRecord::encode_frame`]); trailing bytes are corruption. This is
    /// what the replication wire uses: each shipped record travels as its
    /// own WAL frame, so the receiver re-verifies length and CRC end to end.
    pub fn decode_frame(bytes: &[u8]) -> Result<WalRecord, StoreError> {
        if bytes.len() < 8 {
            return Err(StoreError::Corrupt(format!("torn frame header ({} bytes)", bytes.len())));
        }
        let len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
        if len as u32 > MAX_PAYLOAD {
            return Err(StoreError::Corrupt(format!("implausible payload length {len}")));
        }
        let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if bytes.len() != 8 + len {
            return Err(StoreError::Corrupt(format!(
                "frame length mismatch: header says {len}, have {}",
                bytes.len() - 8
            )));
        }
        let payload = &bytes[8..];
        if crc32(payload) != crc {
            return Err(StoreError::Corrupt("payload checksum mismatch".to_string()));
        }
        WalRecord::decode_payload(payload)
    }

    fn decode_payload(payload: &[u8]) -> Result<WalRecord, StoreError> {
        let mut c = Cursor::new(payload);
        let revision = c.get_u64()?;
        let kind = c.get_u8()?;
        let op = match kind {
            KIND_ADD => WalOp::Add {
                id: c.get_u64()?,
                source: c.get_str()?,
                author: c.get_str()?,
                provenance: c.get_u8()?,
                status: c.get_u8()?,
                confidence: c.get_f64()?,
                added_at: c.get_u64()?,
            },
            KIND_DISABLE => WalOp::Disable { id: c.get_u64()?, reason: c.get_str()? },
            KIND_ENABLE => WalOp::Enable { id: c.get_u64()? },
            KIND_REMOVE => WalOp::Remove { id: c.get_u64()?, reason: c.get_str()? },
            other => return Err(StoreError::Corrupt(format!("unknown record kind {other}"))),
        };
        if c.remaining() != 0 {
            return Err(StoreError::Corrupt(format!("{} trailing payload bytes", c.remaining())));
        }
        Ok(WalRecord { revision, op })
    }
}

/// Result of scanning a WAL byte image: the longest valid record prefix.
#[derive(Debug)]
pub struct WalScan {
    /// Records decoded from the valid prefix, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset where `records[i]` starts (parallel to `records`).
    /// Recovery that discards a suffix of records truncates the file at
    /// the first discarded record's start.
    pub record_starts: Vec<u64>,
    /// Byte length of the valid prefix; recovery truncates the file here.
    pub valid_len: u64,
    /// Bytes past `valid_len` (torn/corrupt tail). Zero for a clean log.
    pub truncated_bytes: u64,
    /// Why scanning stopped, if before end-of-file.
    pub stop_reason: Option<String>,
}

/// Scans `bytes` as a sequence of framed records, stopping (not failing) at
/// the first torn or corrupt frame.
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut record_starts = Vec::new();
    let mut pos = 0usize;
    let mut stop_reason = None;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            stop_reason = Some(format!("torn frame header ({} bytes)", rest.len()));
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        if len as u32 > MAX_PAYLOAD {
            stop_reason = Some(format!("implausible payload length {len}"));
            break;
        }
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if rest.len() < 8 + len {
            stop_reason = Some(format!("torn payload (need {len}, have {})", rest.len() - 8));
            break;
        }
        let payload = &rest[8..8 + len];
        if crc32(payload) != crc {
            stop_reason = Some("payload checksum mismatch".to_string());
            break;
        }
        match WalRecord::decode_payload(payload) {
            Ok(record) => {
                records.push(record);
                record_starts.push(pos as u64);
            }
            Err(e) => {
                stop_reason = Some(format!("undecodable payload: {e}"));
                break;
            }
        }
        pos += 8 + len;
    }
    WalScan {
        records,
        record_starts,
        valid_len: pos as u64,
        truncated_bytes: (bytes.len() - pos) as u64,
        stop_reason,
    }
}

/// Append half of the WAL: frames records, enforces the fsync policy, and
/// self-repairs after failed appends by truncating the garbage tail before
/// the next record. All calls must be externally serialized (the
/// [`crate::DurableRepository`] mutation lock).
pub struct WalWriter {
    storage: Arc<dyn Storage>,
    name: String,
    policy: FsyncPolicy,
    /// Byte length of fully acknowledged records.
    acked_len: u64,
    /// Acknowledged records currently in the log.
    records: u64,
    /// Set after a failed append/fsync: the tail past `acked_len` may hold
    /// a partial or unacknowledged frame and must be truncated before the
    /// next append.
    dirty: bool,
    appends_since_sync: u32,
    metrics: Option<Arc<StoreMetrics>>,
}

impl WalWriter {
    /// A writer positioned at the end of an existing (already validated)
    /// log of `records` records and `acked_len` bytes.
    pub fn new(
        storage: Arc<dyn Storage>,
        name: impl Into<String>,
        policy: FsyncPolicy,
        acked_len: u64,
        records: u64,
    ) -> WalWriter {
        WalWriter {
            storage,
            name: name.into(),
            policy,
            acked_len,
            records,
            dirty: false,
            appends_since_sync: 0,
            metrics: None,
        }
    }

    /// Attaches (or detaches) append/fsync instrumentation.
    pub fn with_metrics(mut self, metrics: Option<Arc<StoreMetrics>>) -> WalWriter {
        self.metrics = metrics;
        self
    }

    /// Acknowledged log length in bytes.
    pub fn len(&self) -> u64 {
        self.acked_len
    }

    /// Whether the log holds no acknowledged records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Acknowledged records in the log (since the last reset).
    pub fn records(&self) -> u64 {
        self.records
    }

    fn repair_if_dirty(&mut self) -> Result<(), StoreError> {
        if self.dirty {
            match self.storage.truncate(&self.name, self.acked_len) {
                Ok(()) => self.dirty = false,
                // Never created: nothing to repair.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => self.dirty = false,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(())
    }

    /// Appends one record. On `Ok` the mutation is *acknowledged*: durable
    /// to the extent the fsync policy promises ([`FsyncPolicy::Always`]
    /// means it survives any crash). On `Err` nothing is acknowledged and
    /// the writer will clear any partial bytes before the next append.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), StoreError> {
        self.repair_if_dirty()?;
        let frame = record.encode_frame();
        if let Err(e) = self.timed_append(&frame) {
            // The failed append may have persisted a prefix of the frame.
            self.dirty = true;
            return Err(e.into());
        }
        match self.policy {
            FsyncPolicy::Always => {
                if let Err(e) = self.timed_sync() {
                    // Written but not durable — not acknowledged. Truncate
                    // before the next append so recovery can never see an
                    // unacknowledged record *behind* an acknowledged one.
                    self.dirty = true;
                    return Err(e.into());
                }
            }
            FsyncPolicy::EveryN(n) => {
                self.appends_since_sync += 1;
                if self.appends_since_sync >= n.max(1) {
                    // Periodic syncs are best-effort; a failure narrows the
                    // durability window but the append itself stands.
                    let _ = self.timed_sync();
                    self.appends_since_sync = 0;
                }
            }
            FsyncPolicy::Never => {}
        }
        self.acked_len += frame.len() as u64;
        self.records += 1;
        if let Some(m) = &self.metrics {
            m.wal_appends.inc();
            m.wal_records.set(self.records as i64);
        }
        Ok(())
    }

    /// `storage.append` with attempt latency recorded (failed attempts
    /// included: a stalling disk should show up in the histogram).
    fn timed_append(&self, frame: &[u8]) -> std::io::Result<()> {
        match &self.metrics {
            Some(m) => {
                let span = SpanTimer::start(&m.wal_append_nanos);
                let out = self.storage.append(&self.name, frame);
                span.finish();
                out
            }
            None => self.storage.append(&self.name, frame),
        }
    }

    /// `storage.sync` with attempt latency recorded.
    fn timed_sync(&self) -> std::io::Result<()> {
        match &self.metrics {
            Some(m) => {
                let span = SpanTimer::start(&m.wal_fsync_nanos);
                let out = self.storage.sync(&self.name);
                span.finish();
                out
            }
            None => self.storage.sync(&self.name),
        }
    }

    /// Empties the log after a successful checkpoint. Crash *before* this
    /// call leaves stale records behind — replay skips them by revision.
    pub fn reset(&mut self) -> Result<(), StoreError> {
        match self.storage.truncate(&self.name, 0) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        self.acked_len = 0;
        self.records = 0;
        self.dirty = false;
        self.appends_since_sync = 0;
        if let Some(m) = &self.metrics {
            m.wal_records.set(0);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn rec(revision: u64) -> WalRecord {
        WalRecord { revision, op: WalOp::Enable { id: revision * 10 } }
    }

    #[test]
    fn frame_roundtrip_all_kinds() {
        let records = vec![
            WalRecord {
                revision: 1,
                op: WalOp::Add {
                    id: 0,
                    source: "rings? -> rings".into(),
                    author: "analyst".into(),
                    provenance: 2,
                    status: 0,
                    confidence: 0.93,
                    added_at: 0,
                },
            },
            WalRecord { revision: 2, op: WalOp::Disable { id: 0, reason: "drift".into() } },
            WalRecord { revision: 3, op: WalOp::Enable { id: 0 } },
            WalRecord { revision: 4, op: WalOp::Remove { id: 0, reason: "subsumed".into() } },
        ];
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&r.encode_frame());
        }
        let scan = scan(&bytes);
        assert_eq!(scan.records, records);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert_eq!(scan.truncated_bytes, 0);
        assert!(scan.stop_reason.is_none());
    }

    #[test]
    fn scan_stops_at_torn_tail() {
        let mut bytes = rec(1).encode_frame();
        let good = bytes.len();
        let torn = rec(2).encode_frame();
        bytes.extend_from_slice(&torn[..torn.len() - 3]);
        let s = scan(&bytes);
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.valid_len, good as u64);
        assert_eq!(s.truncated_bytes, (torn.len() - 3) as u64);
        assert!(s.stop_reason.unwrap().contains("torn"));
    }

    #[test]
    fn scan_stops_at_checksum_corruption() {
        let mut bytes = rec(1).encode_frame();
        let good = bytes.len();
        bytes.extend_from_slice(&rec(2).encode_frame());
        bytes[good + 10] ^= 0x40; // flip a payload bit of record 2
        let s = scan(&bytes);
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.valid_len, good as u64);
        assert!(s.stop_reason.unwrap().contains("checksum"));
    }

    #[test]
    fn scan_rejects_implausible_length() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, u32::MAX); // absurd length prefix
        put_u32(&mut bytes, 0);
        bytes.extend_from_slice(&[0u8; 32]);
        let s = scan(&bytes);
        assert!(s.records.is_empty());
        assert_eq!(s.valid_len, 0);
        assert!(s.stop_reason.unwrap().contains("implausible"));
    }

    #[test]
    fn empty_log_scans_clean() {
        let s = scan(&[]);
        assert!(s.records.is_empty());
        assert_eq!(s.valid_len, 0);
        assert!(s.stop_reason.is_none());
    }

    #[test]
    fn writer_appends_and_resets() {
        let storage = Arc::new(MemStorage::new());
        let mut w = WalWriter::new(storage.clone(), "wal", FsyncPolicy::Always, 0, 0);
        w.append(&rec(1)).unwrap();
        w.append(&rec(2)).unwrap();
        assert_eq!(w.records(), 2);
        let s = scan(&storage.read("wal").unwrap());
        assert_eq!(s.records.len(), 2);
        w.reset().unwrap();
        assert!(w.is_empty());
        assert_eq!(storage.read("wal").unwrap().len(), 0);
        w.append(&rec(3)).unwrap();
        assert_eq!(scan(&storage.read("wal").unwrap()).records, vec![rec(3)]);
    }

    #[test]
    fn writer_repairs_partial_append_before_next_record() {
        let storage = Arc::new(MemStorage::new());
        let mut w = WalWriter::new(storage.clone(), "wal", FsyncPolicy::Always, 0, 0);
        w.append(&rec(1)).unwrap();
        // Simulate a partial append that failed: garbage lands on the tail
        // and the writer is told the append failed.
        storage.append("wal", &[0xDE, 0xAD, 0xBE]).unwrap();
        w.dirty = true;
        w.append(&rec(2)).unwrap();
        let s = scan(&storage.read("wal").unwrap());
        assert_eq!(s.records, vec![rec(1), rec(2)]);
        assert_eq!(s.truncated_bytes, 0, "garbage was repaired, not appended over");
    }
}
