//! Seeded crash-recovery fuzz: thousands of crash-and-reopen cycles over a
//! [`DurableRepository`] running on fault-injected storage, checked against
//! an in-memory model.
//!
//! Invariants:
//! - `FsyncPolicy::Always`: after a crash, the recovered repository equals
//!   the model of all *acknowledged* mutations — or that model plus at most
//!   the single trailing mutation whose append/fsync failed (written but
//!   unacknowledged). No acknowledged mutation is ever lost, none applies
//!   twice, and `open` never serves corrupt state.
//! - Weaker policies (`EveryN`, `Never`): the recovered repository equals
//!   the state after some *prefix* of the acknowledged mutations (bounded
//!   loss window, never reordering or corruption).
//!
//! Seeds and cycle counts are overridable for CI sweeps:
//! `RULEKIT_FUZZ_SEEDS="1,2,3" RULEKIT_FUZZ_CYCLES=500 cargo test -p
//! rulekit-store --test fuzz`.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use rand::{rngs::StdRng, Rng, SeedableRng};
use rulekit_core::{RuleId, RuleMeta, RuleParser, RuleRepository};
use rulekit_data::Taxonomy;
use rulekit_store::{
    DurableConfig, DurableRepository, FaultConfig, FaultyStorage, FsyncPolicy, MemStorage, Storage,
};

const SOURCES: &[&str] = &[
    "rings? -> rings",
    "wedding bands? -> rings",
    "rugs? -> area rugs",
    "sofas? -> sofas",
    "laptop bags? -> NOT laptop computers",
];

/// Keep the rule count bounded so checkpoint encode/parse stays cheap
/// across thousands of cycles.
const MAX_RULES: usize = 40;

#[derive(Debug, Clone)]
enum Op {
    Add { source: &'static str, confidence: f64 },
    Disable { id: u64, reason: String },
    Enable { id: u64 },
    Remove { id: u64, reason: String },
}

fn parser() -> RuleParser {
    RuleParser::new(Taxonomy::builtin())
}

fn fingerprint(repo: &RuleRepository) -> u64 {
    let mut rules: Vec<(u64, String, bool, u64, u64)> = repo
        .full_snapshot()
        .iter()
        .map(|r| {
            (r.id.0, r.source.clone(), r.is_enabled(), r.meta.confidence.to_bits(), r.meta.added_at)
        })
        .collect();
    rules.sort();
    let mut h = DefaultHasher::new();
    (repo.revision(), repo.next_rule_id(), rules).hash(&mut h);
    h.finish()
}

fn gen_op(rng: &mut StdRng, model: &RuleRepository) -> Op {
    let rules = model.full_snapshot();
    let roll = if rules.is_empty() { 0 } else { rng.gen_range(0u32..100) };
    if roll < 40 && rules.len() < MAX_RULES {
        Op::Add {
            source: SOURCES[rng.gen_range(0..SOURCES.len())],
            confidence: (rng.gen_range(0u32..=100) as f64) / 100.0,
        }
    } else if rules.is_empty() {
        Op::Add { source: SOURCES[0], confidence: 1.0 }
    } else {
        let target = rules[rng.gen_range(0..rules.len())].id.0;
        match roll % 3 {
            0 => Op::Disable { id: target, reason: format!("fuzz-{target}") },
            1 => Op::Enable { id: target },
            _ => Op::Remove { id: target, reason: format!("fuzz-{target}") },
        }
    }
}

/// Applies `op` through the durable wrapper. `Ok(true)` = acknowledged and
/// state-changing, `Ok(false)` = acknowledged no-op, `Err` = unacknowledged.
fn apply_durable(durable: &DurableRepository, op: &Op) -> Result<bool, rulekit_store::StoreError> {
    match op {
        Op::Add { source, confidence } => {
            let spec = durable.parser().parse_rule(source).expect("fuzz sources parse");
            let meta = RuleMeta { confidence: *confidence, ..RuleMeta::default() };
            durable.add_rule(spec, meta).map(|_| true)
        }
        Op::Disable { id, reason } => durable.disable(RuleId(*id), reason.clone()),
        Op::Enable { id } => durable.enable(RuleId(*id)),
        Op::Remove { id, reason } => durable.remove(RuleId(*id), reason.clone()),
    }
}

/// Applies `op` to the plain in-memory model. Returns whether it changed
/// state (must agree with the durable wrapper's answer).
fn apply_model(model: &RuleRepository, parser: &RuleParser, op: &Op) -> bool {
    match op {
        Op::Add { source, confidence } => {
            let spec = parser.parse_rule(source).expect("fuzz sources parse");
            let meta = RuleMeta { confidence: *confidence, ..RuleMeta::default() };
            model.add(spec, meta);
            true
        }
        Op::Disable { id, reason } => model.disable(RuleId(*id), reason.clone()),
        Op::Enable { id } => model.enable(RuleId(*id)),
        Op::Remove { id, reason } => model.remove(RuleId(*id), reason.clone()),
    }
}

fn env_u64_list(var: &str, default: &[u64]) -> Vec<u64> {
    match std::env::var(var) {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect::<Vec<u64>>(),
        Err(_) => default.to_vec(),
    }
}

fn env_u64(var: &str, default: u64) -> u64 {
    std::env::var(var).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

fn cycle_seed(seed: u64, cycle: u64) -> u64 {
    seed ^ cycle.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One full fuzz run under `FsyncPolicy::Always`: `cycles` crash/reopen
/// cycles on one seed. Returns (acknowledged ops, injected faults).
fn run_always(seed: u64, cycles: u64) -> (u64, u64) {
    let mem = Arc::new(MemStorage::new());
    let parser = parser();
    let model = RuleRepository::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pending: Option<Op> = None;
    let mut acked = 0u64;
    let mut faults = 0u64;
    let config =
        DurableConfig { fsync: FsyncPolicy::Always, checkpoint_every: 5, keep_checkpoints: 2 };

    for cycle in 0..cycles {
        let faulty = Arc::new(FaultyStorage::new(
            Arc::clone(&mem) as Arc<dyn Storage>,
            FaultConfig::aggressive(cycle_seed(seed, cycle)),
        ));
        // Recovery itself runs on clean I/O (read/truncate are unfaulted in
        // the aggressive profile); mutations below hit the fault schedule.
        let durable = DurableRepository::open(
            Arc::clone(&faulty) as Arc<dyn Storage>,
            parser.clone(),
            config,
        )
        .unwrap_or_else(|e| panic!("seed {seed} cycle {cycle}: open failed: {e}"));

        // Check the recovered state against the model: either every
        // acknowledged op, or that plus the one trailing unacknowledged op.
        let recovered = fingerprint(durable.repository());
        if recovered != fingerprint(&model) {
            let p = pending.take().unwrap_or_else(|| {
                panic!("seed {seed} cycle {cycle}: recovered state diverged with no pending op")
            });
            assert!(
                apply_model(&model, &parser, &p),
                "seed {seed} cycle {cycle}: pending op must apply cleanly"
            );
            assert_eq!(
                recovered,
                fingerprint(&model),
                "seed {seed} cycle {cycle}: recovered state is neither acked nor acked+pending"
            );
        }
        pending = None;

        for _ in 0..rng.gen_range(3u32..9) {
            let op = gen_op(&mut rng, &model);
            match apply_durable(&durable, &op) {
                Ok(changed) => {
                    assert_eq!(
                        apply_model(&model, &parser, &op),
                        changed,
                        "seed {seed} cycle {cycle}: model/durable no-op disagreement"
                    );
                    if changed {
                        acked += 1;
                    }
                    pending = None;
                }
                Err(_) => pending = Some(op),
            }
        }
        faults += faulty.stats().total();

        // Power loss: synced bytes survive, each unsynced tail is cut at a
        // random point.
        mem.crash(|_, unsynced| rng.gen_range(0..=unsynced));
    }

    // Final clean reopen: everything acknowledged must be there.
    let durable =
        DurableRepository::open(Arc::clone(&mem) as Arc<dyn Storage>, parser.clone(), config)
            .expect("final open");
    let recovered = fingerprint(durable.repository());
    if recovered != fingerprint(&model) {
        let p = pending.expect("diverged with no pending op");
        apply_model(&model, &parser, &p);
        assert_eq!(recovered, fingerprint(&model));
    }
    (acked, faults)
}

/// Fuzz run for a weaker fsync policy: the recovered state must equal some
/// prefix of the acknowledged mutation stream.
fn run_bounded_loss(seed: u64, cycles: u64, policy: FsyncPolicy) {
    let mem = Arc::new(MemStorage::new());
    let parser = parser();
    let mut model = RuleRepository::new();
    let mut rng = StdRng::seed_from_u64(seed);
    // Fingerprints of every state the model passed through since the last
    // crash (index 0 = the post-recovery baseline).
    let mut history: Vec<u64> = vec![fingerprint(&model)];
    let config = DurableConfig { fsync: policy, checkpoint_every: 5, keep_checkpoints: 2 };

    for cycle in 0..cycles {
        let faulty = Arc::new(FaultyStorage::new(
            Arc::clone(&mem) as Arc<dyn Storage>,
            FaultConfig::aggressive(cycle_seed(seed, cycle)),
        ));
        let durable = DurableRepository::open(
            Arc::clone(&faulty) as Arc<dyn Storage>,
            parser.clone(),
            config,
        )
        .unwrap_or_else(|e| panic!("seed {seed} cycle {cycle}: open failed: {e}"));

        let recovered = fingerprint(durable.repository());
        assert!(
            history.contains(&recovered),
            "seed {seed} cycle {cycle}: recovered state is not a prefix of acknowledged ops \
             (policy {policy:?})"
        );
        // Rebase the model on whatever prefix survived.
        let repo = durable.repository();
        model = RuleRepository::new();
        model.restore(repo.full_snapshot(), repo.next_rule_id(), repo.revision());
        history = vec![fingerprint(&model)];

        for _ in 0..rng.gen_range(3u32..9) {
            let op = gen_op(&mut rng, &model);
            if let Ok(changed) = apply_durable(&durable, &op) {
                let model_changed = apply_model(&model, &parser, &op);
                assert_eq!(model_changed, changed);
                if changed {
                    history.push(fingerprint(&model));
                }
            }
            // Unacknowledged ops never enter the model or the history: a
            // torn record is truncated on recovery, and no complete record
            // can survive an append fault under these policies.
        }
        mem.crash(|_, unsynced| rng.gen_range(0..=unsynced));
    }
}

#[test]
fn fuzz_always_policy_loses_nothing_across_1000_cycles() {
    let seeds = env_u64_list("RULEKIT_FUZZ_SEEDS", &[11, 42, 777, 31337]);
    let cycles = env_u64("RULEKIT_FUZZ_CYCLES", 250);
    let mut total_acked = 0;
    let mut total_faults = 0;
    for &seed in &seeds {
        let (acked, faults) = run_always(seed, cycles);
        total_acked += acked;
        total_faults += faults;
    }
    assert!(
        seeds.len() as u64 * cycles >= 1000 || std::env::var("RULEKIT_FUZZ_SEEDS").is_ok(),
        "default configuration must cover >= 1000 crash/reopen cycles"
    );
    assert!(total_acked > 0, "fuzz acknowledged no mutations");
    assert!(total_faults > 0, "fault injection never fired — the fuzz tested nothing");
}

#[test]
fn fuzz_every_n_policy_loses_at_most_a_suffix() {
    let seeds = env_u64_list("RULEKIT_FUZZ_SEEDS", &[5, 99]);
    let cycles = env_u64("RULEKIT_FUZZ_CYCLES", 100);
    for &seed in &seeds {
        run_bounded_loss(seed, cycles, FsyncPolicy::EveryN(3));
    }
}

#[test]
fn fuzz_never_policy_loses_at_most_a_suffix() {
    let seeds = env_u64_list("RULEKIT_FUZZ_SEEDS", &[6, 100]);
    let cycles = env_u64("RULEKIT_FUZZ_CYCLES", 100);
    for &seed in &seeds {
        run_bounded_loss(seed, cycles, FsyncPolicy::Never);
    }
}
