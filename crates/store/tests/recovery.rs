//! Corruption-matrix recovery tests: each case damages durable state in a
//! specific way (torn tail, bit flip, stale WAL after a mid-compaction
//! crash, empty log, rotted checkpoint) and asserts recovery repairs or
//! falls back instead of serving corrupt state.

use std::sync::Arc;

use rulekit_core::{RuleMeta, RuleParser, RuleRepository};
use rulekit_data::Taxonomy;
use rulekit_store::{DurableConfig, DurableRepository, FileStorage, MemStorage, Storage, WAL_NAME};

fn parser() -> RuleParser {
    RuleParser::new(Taxonomy::builtin())
}

fn manual_config() -> DurableConfig {
    // No auto-compaction: tests control checkpoint timing explicitly.
    DurableConfig { checkpoint_every: 0, ..DurableConfig::default() }
}

fn open(storage: &Arc<MemStorage>) -> DurableRepository {
    let dyn_storage = Arc::clone(storage) as Arc<dyn Storage>;
    DurableRepository::open(dyn_storage, parser(), manual_config()).expect("open")
}

fn fingerprint(repo: &RuleRepository) -> (u64, u64, Vec<(u64, String, bool)>) {
    let mut rules: Vec<(u64, String, bool)> =
        repo.full_snapshot().iter().map(|r| (r.id.0, r.source.clone(), r.is_enabled())).collect();
    rules.sort();
    (repo.revision(), repo.next_rule_id(), rules)
}

#[test]
fn torn_tail_record_is_truncated_and_prefix_recovers() {
    let storage = Arc::new(MemStorage::new());
    let durable = open(&storage);
    let ids = durable
        .add_rules("rings? -> rings\nrugs? -> area rugs\nsofas? -> sofas", &RuleMeta::default())
        .unwrap();
    durable.disable(ids[2], "drift").unwrap();
    let expected = fingerprint(durable.repository());
    drop(durable);

    // A crash mid-append leaves a partial frame on the tail.
    storage.append(WAL_NAME, &[0x21, 0x00, 0x00, 0x00, 0xAA, 0xBB]).unwrap();

    let reopened = open(&storage);
    let report = reopened.recovery();
    assert_eq!(report.truncated_bytes, 6);
    assert!(report.wal_stop_reason.as_deref().unwrap().contains("torn"));
    assert_eq!(report.replayed, 4);
    assert_eq!(fingerprint(reopened.repository()), expected);

    // The torn bytes were physically truncated: a second reopen is clean.
    drop(reopened);
    let again = open(&storage);
    assert_eq!(again.recovery().truncated_bytes, 0);
    assert_eq!(fingerprint(again.repository()), expected);
}

#[test]
fn bit_flipped_checksum_truncates_from_corrupt_record() {
    let storage = Arc::new(MemStorage::new());
    let durable = open(&storage);
    let ids = durable.add_rules("rings? -> rings", &RuleMeta::default()).unwrap();
    let after_add = fingerprint(durable.repository());
    durable.disable(ids[0], "a long reason so the record has a tail to corrupt").unwrap();
    drop(durable);

    // Flip one payload bit inside the *second* record.
    let wal_len = storage.len(WAL_NAME).unwrap().unwrap() as usize;
    assert!(storage.flip_bit(WAL_NAME, wal_len - 3));

    let reopened = open(&storage);
    let report = reopened.recovery();
    assert!(report.wal_stop_reason.as_deref().unwrap().contains("checksum"));
    assert_eq!(report.replayed, 1, "only the intact add survives");
    assert_eq!(
        fingerprint(reopened.repository()),
        after_add,
        "state rolls back to the last intact record"
    );
    assert!(reopened.repository().get(ids[0]).unwrap().is_enabled());
}

#[test]
fn stale_wal_after_mid_compaction_crash_is_skipped_not_replayed_twice() {
    let storage = Arc::new(MemStorage::new());
    let durable = open(&storage);
    let ids =
        durable.add_rules("rings? -> rings\nrugs? -> area rugs", &RuleMeta::default()).unwrap();
    durable.disable(ids[0], "drift").unwrap();
    // Save the pre-checkpoint WAL, checkpoint (which resets it), then put
    // the stale records back: exactly the state after a crash between
    // checkpoint publish and WAL reset.
    let stale_wal = storage.read(WAL_NAME).unwrap();
    durable.checkpoint().unwrap();
    let expected = fingerprint(durable.repository());
    drop(durable);
    storage.append(WAL_NAME, &stale_wal).unwrap();

    let reopened = open(&storage);
    let report = reopened.recovery();
    assert_eq!(report.skipped, 3, "stale records are already in the checkpoint");
    assert_eq!(report.replayed, 0);
    assert_eq!(fingerprint(reopened.repository()), expected);
    assert_eq!(reopened.repository().len(), 2, "no rule applied twice");
}

#[test]
fn empty_and_zero_length_wal_recover_clean() {
    // No files at all.
    let storage = Arc::new(MemStorage::new());
    let fresh = open(&storage);
    assert!(fresh.repository().is_empty());
    assert_eq!(fresh.recovery().recovered_revision, 0);
    drop(fresh);

    // Zero-length WAL file present (created, nothing ever written back).
    storage.append(WAL_NAME, b"").unwrap();
    let reopened = open(&storage);
    assert!(reopened.repository().is_empty());
    assert!(reopened.recovery().wal_stop_reason.is_none());

    // Zero-length WAL next to a checkpoint: checkpoint state wins.
    reopened.add_rules("rings? -> rings", &RuleMeta::default()).unwrap();
    reopened.checkpoint().unwrap();
    let expected = fingerprint(reopened.repository());
    drop(reopened);
    assert_eq!(storage.len(WAL_NAME).unwrap(), Some(0));
    let third = open(&storage);
    assert_eq!(fingerprint(third.repository()), expected);
}

#[test]
fn rotted_checkpoint_falls_back_to_previous_and_replays_stale_wal() {
    let storage = Arc::new(MemStorage::new());
    let durable = open(&storage);
    durable.add_rules("rings? -> rings", &RuleMeta::default()).unwrap();
    durable.checkpoint().unwrap(); // checkpoint A (revision 1)
    let ids = durable.add_rules("rugs? -> area rugs", &RuleMeta::default()).unwrap();
    durable.disable(ids[0], "drift").unwrap();
    let stale_wal = storage.read(WAL_NAME).unwrap();
    durable.checkpoint().unwrap(); // checkpoint B (revision 3)
    let expected = fingerprint(durable.repository());
    drop(durable);

    // Crash-before-reset left the stale WAL behind, and checkpoint B later
    // suffers bit rot.
    storage.append(WAL_NAME, &stale_wal).unwrap();
    let ckpt_b =
        storage.list().unwrap().into_iter().filter(|n| n.starts_with("ckpt-")).max().unwrap();
    assert!(storage.flip_bit(&ckpt_b, 25));

    let reopened = open(&storage);
    let report = reopened.recovery();
    assert_eq!(report.corrupt_checkpoints, 1);
    assert_eq!(report.checkpoint_revision, 1, "fell back to checkpoint A");
    assert_eq!(report.replayed, 2, "WAL tail re-applies the post-A mutations");
    assert_eq!(fingerprint(reopened.repository()), expected);
    // Housekeeping deleted the rotted file.
    assert!(!storage.list().unwrap().contains(&ckpt_b));
}

#[test]
fn file_storage_survives_restart_and_torn_tail() {
    let dir = std::env::temp_dir()
        .join(format!("rulekit-store-it-{}", std::process::id()))
        .join("file-recovery");
    let _ = std::fs::remove_dir_all(&dir);

    let expected = {
        let storage: Arc<dyn Storage> = Arc::new(FileStorage::open(&dir).unwrap());
        let durable = DurableRepository::open(storage, parser(), manual_config()).unwrap();
        let ids =
            durable.add_rules("rings? -> rings\nrugs? -> area rugs", &RuleMeta::default()).unwrap();
        durable.checkpoint().unwrap();
        durable.disable(ids[1], "drift").unwrap();
        fingerprint(durable.repository())
    };

    // Torn tail on the real file.
    {
        let storage = FileStorage::open(&dir).unwrap();
        storage.append(WAL_NAME, &[0x10, 0x00, 0x00]).unwrap();
    }

    let storage: Arc<dyn Storage> = Arc::new(FileStorage::open(&dir).unwrap());
    let reopened = DurableRepository::open(storage, parser(), manual_config()).unwrap();
    assert_eq!(reopened.recovery().truncated_bytes, 3);
    assert_eq!(reopened.recovery().checkpoint_rules, 2);
    assert_eq!(reopened.recovery().replayed, 1);
    assert_eq!(fingerprint(reopened.repository()), expected);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_metrics_are_idempotent_across_reopens() {
    // Persisted-entry metrics are levels, set from recovered state. If
    // recovery *incremented* them per replayed record, every crash-reopen
    // cycle would double-count rules that were persisted exactly once.
    use rulekit_obs::Registry;

    let registry = Arc::new(Registry::new());
    let storage = Arc::new(MemStorage::new());
    let dyn_storage = Arc::clone(&storage) as Arc<dyn Storage>;

    let durable =
        DurableRepository::open_observed(dyn_storage, parser(), manual_config(), &registry)
            .expect("open");
    durable
        .add_rules("rings? -> rings\nrugs? -> area rugs\nsofas? -> sofas", &RuleMeta::default())
        .unwrap();
    let m = durable.metrics().expect("observed open attaches metrics").clone();
    assert_eq!(m.persisted_rules.value(), 3);
    assert_eq!(m.persisted_revision.value(), 3);
    assert_eq!(m.wal_appends.value(), 3);
    assert_eq!(m.wal_append_nanos.count(), 3);
    assert_eq!(m.wal_fsync_nanos.count(), 3, "FsyncPolicy::Always syncs per record");
    assert_eq!(m.wal_records.value(), 3);
    drop(durable);

    // Crash-reopen twice into the SAME registry: replay applies 3 records
    // each time, but the persisted levels must stay flat at 3 and no WAL
    // appends/fsyncs may be recorded (replay bypasses the writer).
    for reopen in 1..=2u64 {
        let dyn_storage = Arc::clone(&storage) as Arc<dyn Storage>;
        let reopened =
            DurableRepository::open_observed(dyn_storage, parser(), manual_config(), &registry)
                .expect("reopen");
        let m = reopened.metrics().unwrap();
        assert_eq!(m.persisted_rules.value(), 3, "reopen {reopen} double-counted rules");
        assert_eq!(m.persisted_revision.value(), 3);
        assert_eq!(m.wal_appends.value(), 3, "replay must not count as appends");
        assert_eq!(m.wal_append_nanos.count(), 3);
        assert_eq!(reopened.recovery().replayed, 3);
        // Replay-work counters DO accumulate: they measure effort, not state.
        assert_eq!(m.replay_applied.value(), 3 * reopen);
        assert_eq!(m.recoveries.value(), reopen + 1);
    }

    // Checkpoint + reopen: records fold into the checkpoint, levels hold.
    let dyn_storage = Arc::clone(&storage) as Arc<dyn Storage>;
    let durable =
        DurableRepository::open_observed(dyn_storage, parser(), manual_config(), &registry)
            .expect("reopen for checkpoint");
    durable.checkpoint().unwrap();
    let m = durable.metrics().unwrap().clone();
    assert_eq!(m.checkpoints.value(), 1);
    assert_eq!(m.checkpoint_nanos.count(), 1);
    assert_eq!(m.wal_records.value(), 0, "WAL reset after checkpoint");
    drop(durable);

    let dyn_storage = Arc::clone(&storage) as Arc<dyn Storage>;
    let reopened =
        DurableRepository::open_observed(dyn_storage, parser(), manual_config(), &registry)
            .expect("reopen from checkpoint");
    let m = reopened.metrics().unwrap();
    assert_eq!(m.persisted_rules.value(), 3);
    assert_eq!(m.persisted_revision.value(), 3);
    assert_eq!(reopened.recovery().replayed, 0, "checkpoint absorbed the log");
}
