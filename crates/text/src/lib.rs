//! # rulekit-text
//!
//! Text-processing substrate for rulekit: tokenization and normalization,
//! sparse TF/IDF vectors, q-gram and set similarity, and Rocchio relevance
//! feedback. These are the text primitives the SIGMOD'15 paper's tools are
//! built from — the §5.1 synonym finder ranks candidates by TF/IDF context
//! cosine and re-ranks with Rocchio; the §6 entity-matching rules use
//! 3-gram Jaccard; §5.2 mining tokenizes titles with stop-word removal.

pub mod ngram;
pub mod rocchio;
pub mod similarity;
pub mod tfidf;
pub mod tokenize;
pub mod vector;

pub use ngram::{char_qgram_set, char_qgrams, qgram_jaccard, token_ngrams};
pub use rocchio::{rocchio_update, RocchioWeights};
pub use similarity::{
    dice, jaccard, levenshtein, levenshtein_similarity, overlap_coefficient, token_jaccard,
};
pub use tfidf::TfIdf;
pub use tokenize::{normalize_title, Token, Tokenizer, DEFAULT_STOPWORDS};
pub use vector::{SparseVector, Vocabulary};
