//! Character q-grams and token n-grams.
//!
//! Character 3-grams implement the paper's `jaccard.3g` entity-matching
//! predicate (§6); token n-grams feed sequence mining (§5.2).

use std::collections::HashSet;

/// Character q-grams of `text`, including `q-1` padding (`#`) on both sides —
/// the standard construction so short strings still produce grams.
pub fn char_qgrams(text: &str, q: usize) -> Vec<String> {
    assert!(q >= 1, "q must be at least 1");
    let mut chars: Vec<char> = Vec::with_capacity(text.chars().count() + 2 * (q - 1));
    chars.resize(q - 1, '#');
    chars.extend(text.chars());
    chars.extend(std::iter::repeat_n('#', q - 1));
    if chars.len() < q {
        return Vec::new();
    }
    chars.windows(q).map(|w| w.iter().collect()).collect()
}

/// Unique character q-grams as a set.
pub fn char_qgram_set(text: &str, q: usize) -> HashSet<String> {
    char_qgrams(text, q).into_iter().collect()
}

/// Contiguous token n-grams.
pub fn token_ngrams<T: AsRef<str>>(tokens: &[T], n: usize) -> Vec<Vec<String>> {
    assert!(n >= 1, "n must be at least 1");
    if tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.iter().map(|t| t.as_ref().to_string()).collect()).collect()
}

/// Jaccard similarity of the q-gram sets of two strings — the paper's
/// `jaccard.3g(a.title, b.title)` when `q = 3`.
pub fn qgram_jaccard(a: &str, b: &str, q: usize) -> f64 {
    let sa = char_qgram_set(a, q);
    let sb = char_qgram_set(b, q);
    crate::similarity::jaccard(&sa, &sb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigram_count_with_padding() {
        // "abc" padded → "##abc##": 5 windows of size 3.
        assert_eq!(char_qgrams("abc", 3).len(), 5);
        assert_eq!(char_qgrams("abc", 3)[0], "##a");
    }

    #[test]
    fn unigrams_have_no_padding_effect() {
        assert_eq!(char_qgrams("ab", 1), vec!["a", "b"]);
    }

    #[test]
    fn empty_string_short_grams() {
        assert!(!char_qgrams("", 3).is_empty()); // "####" windows: "###", "###"
        assert!(char_qgrams("", 1).is_empty());
    }

    #[test]
    fn token_ngrams_windows() {
        let toks = ["blue", "denim", "jeans"];
        assert_eq!(token_ngrams(&toks, 2), vec![vec!["blue", "denim"], vec!["denim", "jeans"]]);
        assert!(token_ngrams(&toks, 4).is_empty());
    }

    #[test]
    fn identical_strings_jaccard_one() {
        assert!((qgram_jaccard("motor oil", "motor oil", 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_strings_jaccard_zero() {
        assert_eq!(qgram_jaccard("aaaa", "zzzz", 3), 0.0);
    }

    #[test]
    fn similar_titles_have_high_jaccard() {
        let a = "the art of computer programming vol 1";
        let b = "the art of computer programming vol 2";
        assert!(qgram_jaccard(a, b, 3) > 0.8);
    }
}
