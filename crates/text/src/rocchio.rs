//! Rocchio relevance feedback (§5.1, "Incorporating Analyst Feedback").
//!
//! After each iteration the synonym finder updates the mean context vectors:
//!
//! ```text
//! M' = α·M + β/|Cr| · Σ_{c ∈ Cr} M_c  −  γ/|Cnr| · Σ_{c ∈ Cnr} M_c
//! ```
//!
//! where `Cr`/`Cnr` are the candidates the analyst accepted/rejected in the
//! current iteration.

use crate::vector::SparseVector;

/// Rocchio balancing weights (α, β, γ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocchioWeights {
    /// Weight of the existing profile vector.
    pub alpha: f64,
    /// Weight of the accepted-candidate mean.
    pub beta: f64,
    /// Weight of the rejected-candidate mean.
    pub gamma: f64,
}

impl Default for RocchioWeights {
    /// The classic SMART defaults (α=1, β=0.75, γ=0.15).
    fn default() -> Self {
        RocchioWeights { alpha: 1.0, beta: 0.75, gamma: 0.15 }
    }
}

/// Applies one Rocchio update to `profile`.
///
/// Negative weights produced by the subtraction are clamped to zero, the
/// standard convention (a term cannot be "negatively present").
pub fn rocchio_update(
    profile: &SparseVector,
    accepted: &[SparseVector],
    rejected: &[SparseVector],
    weights: RocchioWeights,
) -> SparseVector {
    let mut updated = profile.scaled(weights.alpha);
    if !accepted.is_empty() {
        let mean = SparseVector::mean(accepted.iter());
        updated.add_scaled(&mean, weights.beta);
    }
    if !rejected.is_empty() {
        let mean = SparseVector::mean(rejected.iter());
        updated.add_scaled(&mean, -weights.gamma);
    }
    updated.clamp_non_negative();
    updated
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    #[test]
    fn accepted_terms_gain_weight() {
        let profile = v(&[(1, 1.0)]);
        let updated =
            rocchio_update(&profile, &[v(&[(1, 1.0), (2, 2.0)])], &[], RocchioWeights::default());
        assert!(updated.get(1) > profile.get(1));
        assert!(updated.get(2) > 0.0);
    }

    #[test]
    fn rejected_terms_lose_weight() {
        let profile = v(&[(1, 1.0), (2, 1.0)]);
        let updated = rocchio_update(&profile, &[], &[v(&[(2, 4.0)])], RocchioWeights::default());
        assert_eq!(updated.get(1), 1.0);
        assert!(updated.get(2) < 1.0);
    }

    #[test]
    fn negative_weights_clamped() {
        let profile = v(&[(2, 0.1)]);
        let updated = rocchio_update(&profile, &[], &[v(&[(2, 100.0)])], RocchioWeights::default());
        assert_eq!(updated.get(2), 0.0);
    }

    #[test]
    fn no_feedback_scales_by_alpha() {
        let profile = v(&[(1, 2.0)]);
        let updated = rocchio_update(
            &profile,
            &[],
            &[],
            RocchioWeights { alpha: 0.5, beta: 1.0, gamma: 1.0 },
        );
        assert_eq!(updated.get(1), 1.0);
    }

    #[test]
    fn multiple_accepted_are_averaged() {
        let profile = SparseVector::new();
        let updated = rocchio_update(
            &profile,
            &[v(&[(1, 2.0)]), v(&[(1, 4.0)])],
            &[],
            RocchioWeights { alpha: 1.0, beta: 1.0, gamma: 0.0 },
        );
        assert_eq!(updated.get(1), 3.0);
    }
}
