//! Set-based string similarity measures used by entity-matching predicates
//! (§6) and rule-overlap analysis (§4).

use std::collections::HashSet;
use std::hash::Hash;

/// Jaccard similarity `|A ∩ B| / |A ∪ B|`; 1.0 when both sets are empty.
pub fn jaccard<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Dice coefficient `2|A ∩ B| / (|A| + |B|)`; 1.0 when both sets are empty.
pub fn dice<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    2.0 * inter as f64 / (a.len() + b.len()) as f64
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)`; 1.0 when either is empty.
///
/// This is the measure used for "rules that overlap significantly" (§4): a
/// small rule entirely inside a big rule scores 1.0 even though Jaccard is
/// tiny.
pub fn overlap_coefficient<T: Eq + Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    let m = a.len().min(b.len());
    if m == 0 {
        return 1.0;
    }
    let inter = a.intersection(b).count();
    inter as f64 / m as f64
}

/// Token-level Jaccard of two whitespace-tokenized strings.
pub fn token_jaccard(a: &str, b: &str) -> f64 {
    let sa: HashSet<&str> = a.split_whitespace().collect();
    let sb: HashSet<&str> = b.split_whitespace().collect();
    jaccard(&sa, &sb)
}

/// Normalized Levenshtein similarity `1 - dist / max(len)`; 1.0 for two empty
/// strings. Used by approximate dictionary matching in IE (§6).
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    if la == 0 && lb == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / la.max(lb) as f64
}

/// Levenshtein edit distance (two-row dynamic program).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(items: &[&str]) -> HashSet<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn jaccard_basic() {
        let a = set(&["a", "b", "c"]);
        let b = set(&["b", "c", "d"]);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_empty_sets() {
        let e: HashSet<String> = HashSet::new();
        assert_eq!(jaccard(&e, &e), 1.0);
        assert_eq!(jaccard(&e, &set(&["a"])), 0.0);
    }

    #[test]
    fn dice_basic() {
        let a = set(&["a", "b"]);
        let b = set(&["b", "c"]);
        assert!((dice(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overlap_coefficient_subset_is_one() {
        let small = set(&["a"]);
        let big = set(&["a", "b", "c", "d"]);
        assert_eq!(overlap_coefficient(&small, &big), 1.0);
        assert!(jaccard(&small, &big) < 0.3);
    }

    #[test]
    fn token_jaccard_on_titles() {
        assert!(token_jaccard("blue denim jeans", "black denim jeans") > 0.4);
        assert_eq!(token_jaccard("abc", "xyz"), 0.0);
    }

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn levenshtein_similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("IBM", "IBM Inc");
        assert!(s > 0.3 && s < 1.0);
    }
}
