//! TF/IDF weighting (Salton & Buckley), exactly as the §5.1 synonym finder
//! uses it: `w(t, m) = tf(t, m) · idf(t)` with `idf(t) = ln(|M| / df(t))`.

use crate::vector::{SparseVector, Vocabulary};
use parking_lot::RwLock;
use std::sync::Arc;

/// Accumulates document frequencies, then weights token lists.
///
/// Thread-safe: weighting is read-only after fitting, and `Arc<TfIdf>` can be
/// shared across executor threads.
#[derive(Debug)]
pub struct TfIdf {
    vocab: RwLock<Vocabulary>,
    doc_freq: RwLock<Vec<u32>>,
    docs: RwLock<u64>,
}

impl Default for TfIdf {
    fn default() -> Self {
        TfIdf::new()
    }
}

impl TfIdf {
    /// Creates an empty model.
    pub fn new() -> Self {
        TfIdf {
            vocab: RwLock::new(Vocabulary::new()),
            doc_freq: RwLock::new(Vec::new()),
            docs: RwLock::new(0),
        }
    }

    /// Fits a model over an iterator of token lists.
    pub fn fit<'a, I, T>(corpus: I) -> Arc<TfIdf>
    where
        I: IntoIterator<Item = T>,
        T: IntoIterator<Item = &'a str>,
    {
        let model = TfIdf::new();
        for doc in corpus {
            model.observe(doc);
        }
        Arc::new(model)
    }

    /// Adds one document's tokens to the document-frequency counts.
    pub fn observe<'a>(&self, tokens: impl IntoIterator<Item = &'a str>) {
        let mut vocab = self.vocab.write();
        let mut df = self.doc_freq.write();
        let mut seen: Vec<u32> = tokens.into_iter().map(|t| vocab.intern(t)).collect();
        seen.sort_unstable();
        seen.dedup();
        for id in seen {
            if df.len() <= id as usize {
                df.resize(id as usize + 1, 0);
            }
            df[id as usize] += 1;
        }
        *self.docs.write() += 1;
    }

    /// Number of observed documents.
    pub fn doc_count(&self) -> u64 {
        *self.docs.read()
    }

    /// IDF of `term`: `ln(N / df)`. Unseen terms get the maximum IDF
    /// `ln(N + 1)` (they are maximally discriminative).
    pub fn idf(&self, term: &str) -> f64 {
        let n = (*self.docs.read()).max(1) as f64;
        match self.vocab.read().get(term) {
            Some(id) => {
                let df = self.doc_freq.read().get(id as usize).copied().unwrap_or(0);
                if df == 0 {
                    (n + 1.0).ln()
                } else {
                    (n / df as f64).ln()
                }
            }
            None => (n + 1.0).ln(),
        }
    }

    /// Document frequency of `term`.
    pub fn df(&self, term: &str) -> u32 {
        self.vocab
            .read()
            .get(term)
            .and_then(|id| self.doc_freq.read().get(id as usize).copied())
            .unwrap_or(0)
    }

    /// TF/IDF-weights a token list into a sparse vector. Unseen terms are
    /// interned (so repeated calls stay consistent) but keep df = 0.
    pub fn weigh<'a>(&self, tokens: impl IntoIterator<Item = &'a str>) -> SparseVector {
        let n = (*self.docs.read()).max(1) as f64;
        let mut vocab = self.vocab.write();
        let df = self.doc_freq.read();
        let ids: Vec<u32> = tokens.into_iter().map(|t| vocab.intern(t)).collect();
        let tf = SparseVector::term_frequencies(ids);
        let pairs = tf
            .entries()
            .iter()
            .map(|&(id, count)| {
                let d = df.get(id as usize).copied().unwrap_or(0);
                let idf = if d == 0 { (n + 1.0).ln() } else { (n / d as f64).ln() };
                (id, count * idf)
            })
            .collect();
        SparseVector::from_pairs(pairs)
    }

    /// Resolves a term id back to its string.
    pub fn term(&self, id: u32) -> Option<String> {
        self.vocab.read().term(id).map(str::to_string)
    }

    /// Resolves a term to its id, if seen.
    pub fn term_id(&self, term: &str) -> Option<u32> {
        self.vocab.read().get(term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> Arc<TfIdf> {
        TfIdf::fit([
            vec!["blue", "denim", "jeans"],
            vec!["black", "denim", "jeans"],
            vec!["blue", "area", "rug"],
            vec!["oriental", "area", "rug"],
        ])
    }

    #[test]
    fn doc_count_tracks_observations() {
        assert_eq!(model().doc_count(), 4);
    }

    #[test]
    fn df_counts_documents_not_occurrences() {
        let m = TfIdf::fit([vec!["a", "a", "b"], vec!["a"]]);
        assert_eq!(m.df("a"), 2);
        assert_eq!(m.df("b"), 1);
        assert_eq!(m.df("zzz"), 0);
    }

    #[test]
    fn idf_orders_rare_above_common() {
        let m = model();
        assert!(m.idf("oriental") > m.idf("denim"));
        assert!(m.idf("denim") > m.idf("jeans") - 1e-12); // equal df ⇒ equal idf
    }

    #[test]
    fn unseen_terms_get_max_idf() {
        let m = model();
        assert!(m.idf("cryptic") > m.idf("oriental"));
    }

    #[test]
    fn weigh_produces_tfidf_weights() {
        let m = model();
        let v = m.weigh(["denim", "denim", "jeans"]);
        let denim_id = m.term_id("denim").unwrap();
        let jeans_id = m.term_id("jeans").unwrap();
        let expected_denim = 2.0 * (4.0f64 / 2.0).ln();
        let expected_jeans = 1.0 * (4.0f64 / 2.0).ln();
        assert!((v.get(denim_id) - expected_denim).abs() < 1e-12);
        assert!((v.get(jeans_id) - expected_jeans).abs() < 1e-12);
    }

    #[test]
    fn weigh_interns_unseen_terms_consistently() {
        let m = model();
        let v1 = m.weigh(["novelword"]);
        let v2 = m.weigh(["novelword"]);
        assert_eq!(v1, v2);
        assert!(!v1.is_zero());
    }

    #[test]
    fn common_everywhere_term_gets_zero_idf() {
        let m = TfIdf::fit([vec!["x", "a"], vec!["x", "b"]]);
        assert!(m.idf("x").abs() < 1e-12);
        let v = m.weigh(["x"]);
        assert!(v.is_zero()); // zero weights are pruned
    }

    #[test]
    fn term_round_trip() {
        let m = model();
        let id = m.term_id("rug").unwrap();
        assert_eq!(m.term(id).as_deref(), Some("rug"));
    }
}
