//! Tokenization and normalization of product titles and descriptions.
//!
//! The paper's rules and mining operate on *tokens* of product titles after
//! "some preprocessing such as lowercasing and removing certain stop words
//! and characters that we have manually compiled in a dictionary" (§5.2).
//! This module is that preprocessing.

use std::collections::HashSet;

/// A token with its byte span in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Normalized token text (lowercased when the tokenizer lowercases).
    pub text: String,
    /// Byte offset of the token start in the original text.
    pub start: usize,
    /// Byte offset one past the token end.
    pub end: usize,
}

/// Configurable word tokenizer.
///
/// A token is a maximal run of alphanumeric characters plus a small set of
/// intra-word connectors (`'`), so `men's` stays one token while `13-293snb`
/// splits on the dash (matching how analysts write title rules).
#[derive(Debug, Clone)]
pub struct Tokenizer {
    lowercase: bool,
    stopwords: HashSet<String>,
    min_len: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Tokenizer::new()
    }
}

impl Tokenizer {
    /// A lowercasing tokenizer with no stop words.
    pub fn new() -> Self {
        Tokenizer { lowercase: true, stopwords: HashSet::new(), min_len: 1 }
    }

    /// A tokenizer loaded with the default e-commerce stop-word dictionary.
    pub fn with_default_stopwords() -> Self {
        let mut t = Tokenizer::new();
        t.stopwords = DEFAULT_STOPWORDS.iter().map(|s| (*s).to_string()).collect();
        t
    }

    /// Disables lowercasing (extraction rules sometimes need original case).
    pub fn case_sensitive(mut self) -> Self {
        self.lowercase = false;
        self
    }

    /// Sets the minimum token length (shorter tokens are dropped).
    pub fn min_token_len(mut self, len: usize) -> Self {
        self.min_len = len;
        self
    }

    /// Adds extra stop words.
    pub fn add_stopwords<I: IntoIterator<Item = S>, S: Into<String>>(mut self, words: I) -> Self {
        self.stopwords.extend(words.into_iter().map(Into::into));
        self
    }

    /// Tokenizes `text`, returning tokens with spans.
    pub fn tokenize_spans(&self, text: &str) -> Vec<Token> {
        let mut out = Vec::new();
        let mut start: Option<usize> = None;
        for (i, c) in text.char_indices() {
            if is_word_char(c) {
                if start.is_none() {
                    start = Some(i);
                }
            } else if let Some(s) = start.take() {
                self.push_token(text, s, i, &mut out);
            }
        }
        if let Some(s) = start {
            self.push_token(text, s, text.len(), &mut out);
        }
        out
    }

    /// Tokenizes `text` into plain strings.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        self.tokenize_spans(text).into_iter().map(|t| t.text).collect()
    }

    fn push_token(&self, text: &str, start: usize, end: usize, out: &mut Vec<Token>) {
        let raw = &text[start..end];
        // Trim connector characters that ended up at the edges ("'" in "'em").
        let trimmed = raw.trim_matches('\'');
        if trimmed.is_empty() {
            return;
        }
        let norm = if self.lowercase { trimmed.to_lowercase() } else { trimmed.to_string() };
        if norm.chars().count() < self.min_len || self.stopwords.contains(&norm) {
            return;
        }
        let offset = raw.len() - raw.trim_start_matches('\'').len();
        let tok_start = start + offset;
        out.push(Token { text: norm, start: tok_start, end: tok_start + trimmed.len() });
    }
}

fn is_word_char(c: char) -> bool {
    c.is_alphanumeric() || c == '\''
}

/// Stop words compiled for product-title preprocessing (§5.2).
pub const DEFAULT_STOPWORDS: &[&str] = &[
    "a", "an", "and", "at", "by", "for", "from", "in", "of", "on", "or", "the", "to", "with",
    "new", "pack", "set", "pc", "pcs", "piece", "pieces", "count", "ct", "oz", "inch", "in",
];

/// Lowercases and collapses whitespace — the normalization applied to titles
/// before analyst rules run.
pub fn normalize_title(title: &str) -> String {
    let mut out = String::with_capacity(title.len());
    let mut last_space = true;
    for c in title.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            for l in c.to_lowercase() {
                out.push(l);
            }
            last_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_paper_title() {
        // Figure-1-style title.
        let t = Tokenizer::new();
        let toks = t.tokenize("Dickies 38in. x 30in. Indigo Blue Relaxed Fit Denim Jeans");
        assert_eq!(
            toks,
            vec![
                "dickies", "38in", "x", "30in", "indigo", "blue", "relaxed", "fit", "denim",
                "jeans"
            ]
        );
    }

    #[test]
    fn spans_point_into_source() {
        let t = Tokenizer::new();
        let text = "Blue Jeans";
        for tok in t.tokenize_spans(text) {
            assert_eq!(text[tok.start..tok.end].to_lowercase(), tok.text);
        }
    }

    #[test]
    fn apostrophes_stay_inside_words() {
        let t = Tokenizer::new();
        assert_eq!(t.tokenize("big men's regular fit"), vec!["big", "men's", "regular", "fit"]);
    }

    #[test]
    fn edge_apostrophes_trimmed() {
        let t = Tokenizer::new();
        assert_eq!(t.tokenize("'quoted' word"), vec!["quoted", "word"]);
    }

    #[test]
    fn stopwords_removed() {
        let t = Tokenizer::with_default_stopwords();
        assert_eq!(t.tokenize("pack of 2 rings"), vec!["2", "rings"]);
    }

    #[test]
    fn custom_stopwords() {
        let t = Tokenizer::new().add_stopwords(["blue"]);
        assert_eq!(t.tokenize("blue jeans"), vec!["jeans"]);
    }

    #[test]
    fn min_token_len_filters() {
        let t = Tokenizer::new().min_token_len(2);
        assert_eq!(t.tokenize("a bc def"), vec!["bc", "def"]);
    }

    #[test]
    fn case_sensitive_mode() {
        let t = Tokenizer::new().case_sensitive();
        assert_eq!(t.tokenize("Apple iPhone"), vec!["Apple", "iPhone"]);
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        let t = Tokenizer::new();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("--- !!! ***").is_empty());
    }

    #[test]
    fn dashes_split_tokens() {
        let t = Tokenizer::new();
        assert_eq!(t.tokenize("13-293snb 38x30"), vec!["13", "293snb", "38x30"]);
    }

    #[test]
    fn normalize_title_collapses_space_and_case() {
        assert_eq!(normalize_title("  Blue   JEANS \t 32x30 "), "blue jeans 32x30");
    }
}
