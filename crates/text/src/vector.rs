//! Sparse vectors and a string-interning vocabulary.
//!
//! All TF/IDF machinery in the synonym finder (§5.1) and the learning
//! classifiers operates on these types.

use std::collections::HashMap;

/// Interns terms to dense `u32` ids.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    by_term: HashMap<String, u32>,
    terms: Vec<String>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Vocabulary::default()
    }

    /// Returns the id for `term`, interning it if new.
    pub fn intern(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.by_term.get(term) {
            return id;
        }
        let id = self.terms.len() as u32;
        self.terms.push(term.to_string());
        self.by_term.insert(term.to_string(), id);
        id
    }

    /// Looks up the id of `term` without interning.
    pub fn get(&self, term: &str) -> Option<u32> {
        self.by_term.get(term).copied()
    }

    /// The term for `id`.
    pub fn term(&self, id: u32) -> Option<&str> {
        self.terms.get(id as usize).map(String::as_str)
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// A sparse vector: sorted `(term id, weight)` pairs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVector {
    entries: Vec<(u32, f64)>,
}

impl SparseVector {
    /// The zero vector.
    pub fn new() -> Self {
        SparseVector::default()
    }

    /// Builds a vector from unsorted (possibly duplicated) pairs, summing
    /// duplicate ids.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(id, _)| id);
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(pairs.len());
        for (id, w) in pairs {
            match entries.last_mut() {
                Some(last) if last.0 == id => last.1 += w,
                _ => entries.push((id, w)),
            }
        }
        entries.retain(|&(_, w)| w != 0.0);
        SparseVector { entries }
    }

    /// Builds a term-frequency vector from token ids.
    pub fn term_frequencies(ids: impl IntoIterator<Item = u32>) -> Self {
        SparseVector::from_pairs(ids.into_iter().map(|id| (id, 1.0)).collect())
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Whether this is the zero vector.
    pub fn is_zero(&self) -> bool {
        self.entries.is_empty()
    }

    /// The weight of `id` (0.0 when absent).
    pub fn get(&self, id: u32) -> f64 {
        self.entries
            .binary_search_by_key(&id, |&(i, _)| i)
            .map(|idx| self.entries[idx].1)
            .unwrap_or(0.0)
    }

    /// Dot product with `other`.
    pub fn dot(&self, other: &SparseVector) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut sum = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += self.entries[i].1 * other.entries[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Cosine similarity with `other` (0.0 when either is zero).
    pub fn cosine(&self, other: &SparseVector) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Returns a normalized (unit-length) copy; the zero vector stays zero.
    pub fn normalized(&self) -> SparseVector {
        let n = self.norm();
        if n == 0.0 {
            self.clone()
        } else {
            self.scaled(1.0 / n)
        }
    }

    /// Returns `self * factor`.
    pub fn scaled(&self, factor: f64) -> SparseVector {
        if factor == 0.0 {
            return SparseVector::new();
        }
        SparseVector { entries: self.entries.iter().map(|&(id, w)| (id, w * factor)).collect() }
    }

    /// Adds `factor * other` into `self`.
    pub fn add_scaled(&mut self, other: &SparseVector, factor: f64) {
        if factor == 0.0 || other.is_zero() {
            return;
        }
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (mut i, mut j) = (0, 0);
        while i < self.entries.len() || j < other.entries.len() {
            match (self.entries.get(i), other.entries.get(j)) {
                (Some(&(ia, wa)), Some(&(ib, wb))) => match ia.cmp(&ib) {
                    std::cmp::Ordering::Less => {
                        merged.push((ia, wa));
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((ib, wb * factor));
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push((ia, wa + wb * factor));
                        i += 1;
                        j += 1;
                    }
                },
                (Some(&(ia, wa)), None) => {
                    merged.push((ia, wa));
                    i += 1;
                }
                (None, Some(&(ib, wb))) => {
                    merged.push((ib, wb * factor));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        merged.retain(|&(_, w)| w != 0.0);
        self.entries = merged;
    }

    /// Clamps all negative weights to zero (Rocchio convention).
    pub fn clamp_non_negative(&mut self) {
        self.entries.retain(|&(_, w)| w > 0.0);
    }

    /// Mean of a set of vectors; the empty set yields the zero vector.
    pub fn mean<'a>(vectors: impl IntoIterator<Item = &'a SparseVector>) -> SparseVector {
        let mut sum = SparseVector::new();
        let mut count = 0usize;
        for v in vectors {
            sum.add_scaled(v, 1.0);
            count += 1;
        }
        if count == 0 {
            sum
        } else {
            sum.scaled(1.0 / count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    #[test]
    fn vocabulary_interning_is_stable() {
        let mut vocab = Vocabulary::new();
        let a = vocab.intern("jeans");
        let b = vocab.intern("denim");
        assert_eq!(vocab.intern("jeans"), a);
        assert_eq!(vocab.get("denim"), Some(b));
        assert_eq!(vocab.term(a), Some("jeans"));
        assert_eq!(vocab.len(), 2);
        assert_eq!(vocab.get("missing"), None);
        assert_eq!(vocab.term(99), None);
    }

    #[test]
    fn from_pairs_sorts_and_sums_duplicates() {
        let vec = v(&[(3, 1.0), (1, 2.0), (3, 0.5)]);
        assert_eq!(vec.entries(), &[(1, 2.0), (3, 1.5)]);
    }

    #[test]
    fn from_pairs_drops_zero_weights() {
        let vec = v(&[(1, 1.0), (1, -1.0), (2, 3.0)]);
        assert_eq!(vec.entries(), &[(2, 3.0)]);
    }

    #[test]
    fn term_frequencies_counts() {
        let vec = SparseVector::term_frequencies([5, 2, 5, 5]);
        assert_eq!(vec.get(5), 3.0);
        assert_eq!(vec.get(2), 1.0);
        assert_eq!(vec.get(9), 0.0);
    }

    #[test]
    fn dot_product_aligns_ids() {
        let a = v(&[(1, 2.0), (3, 1.0)]);
        let b = v(&[(1, 0.5), (2, 9.0), (3, 2.0)]);
        assert!((a.dot(&b) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_identical_is_one() {
        let a = v(&[(1, 1.0), (2, 2.0)]);
        assert!((a.cosine(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_orthogonal_is_zero() {
        let a = v(&[(1, 1.0)]);
        let b = v(&[(2, 1.0)]);
        assert_eq!(a.cosine(&b), 0.0);
    }

    #[test]
    fn cosine_with_zero_vector_is_zero() {
        let a = v(&[(1, 1.0)]);
        assert_eq!(a.cosine(&SparseVector::new()), 0.0);
    }

    #[test]
    fn add_scaled_merges() {
        let mut a = v(&[(1, 1.0), (3, 1.0)]);
        a.add_scaled(&v(&[(2, 2.0), (3, 1.0)]), 0.5);
        assert_eq!(a.entries(), &[(1, 1.0), (2, 1.0), (3, 1.5)]);
    }

    #[test]
    fn add_scaled_cancellation_removes_entry() {
        let mut a = v(&[(1, 1.0)]);
        a.add_scaled(&v(&[(1, 1.0)]), -1.0);
        assert!(a.is_zero());
    }

    #[test]
    fn normalized_has_unit_norm() {
        let a = v(&[(1, 3.0), (2, 4.0)]);
        assert!((a.normalized().norm() - 1.0).abs() < 1e-12);
        assert!(SparseVector::new().normalized().is_zero());
    }

    #[test]
    fn mean_averages() {
        let m = SparseVector::mean([&v(&[(1, 2.0)]), &v(&[(1, 4.0), (2, 2.0)])]);
        assert_eq!(m.get(1), 3.0);
        assert_eq!(m.get(2), 1.0);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert!(SparseVector::mean([]).is_zero());
    }

    #[test]
    fn clamp_non_negative() {
        let mut a = v(&[(1, -1.0), (2, 2.0)]);
        a.clamp_non_negative();
        assert_eq!(a.entries(), &[(2, 2.0)]);
    }
}
