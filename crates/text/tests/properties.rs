//! Property tests for the text substrate.

use proptest::prelude::*;
use rulekit_text::{
    char_qgram_set, jaccard, levenshtein, rocchio_update, RocchioWeights, SparseVector, TfIdf,
    Tokenizer,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Token spans always slice cleanly out of the source text and match the
    /// token (modulo lowercasing).
    #[test]
    fn tokenizer_spans_are_valid(text in "[a-zA-Z0-9 '\\-\\.,!]{0,60}") {
        let tokenizer = Tokenizer::new();
        for tok in tokenizer.tokenize_spans(&text) {
            prop_assert!(tok.start <= tok.end && tok.end <= text.len());
            prop_assert!(text.is_char_boundary(tok.start) && text.is_char_boundary(tok.end));
            prop_assert_eq!(text[tok.start..tok.end].to_lowercase(), tok.text);
        }
    }

    /// Tokenization is idempotent under re-joining: tokens of the joined
    /// tokens equal the tokens.
    #[test]
    fn tokenization_idempotent(text in "[a-z0-9 ]{0,60}") {
        let tokenizer = Tokenizer::new();
        let once = tokenizer.tokenize(&text);
        let twice = tokenizer.tokenize(&once.join(" "));
        prop_assert_eq!(once, twice);
    }

    /// Cosine similarity is symmetric and bounded in [0, 1] for
    /// non-negative vectors.
    #[test]
    fn cosine_symmetric_and_bounded(
        a in prop::collection::vec((0u32..40, 0.0f64..10.0), 0..12),
        b in prop::collection::vec((0u32..40, 0.0f64..10.0), 0..12),
    ) {
        let va = SparseVector::from_pairs(a);
        let vb = SparseVector::from_pairs(b);
        let ab = va.cosine(&vb);
        let ba = vb.cosine(&va);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&ab));
    }

    /// `add_scaled` matches elementwise arithmetic.
    #[test]
    fn add_scaled_is_elementwise(
        a in prop::collection::vec((0u32..20, -5.0f64..5.0), 0..10),
        b in prop::collection::vec((0u32..20, -5.0f64..5.0), 0..10),
        factor in -3.0f64..3.0,
    ) {
        let va = SparseVector::from_pairs(a);
        let vb = SparseVector::from_pairs(b);
        let mut sum = va.clone();
        sum.add_scaled(&vb, factor);
        for id in 0u32..20 {
            let expect = va.get(id) + factor * vb.get(id);
            prop_assert!((sum.get(id) - expect).abs() < 1e-9, "id {id}");
        }
    }

    /// Jaccard is symmetric, bounded, and 1 exactly for equal sets.
    #[test]
    fn jaccard_properties(
        a in prop::collection::hash_set("[a-e]{1,2}", 0..8),
        b in prop::collection::hash_set("[a-e]{1,2}", 0..8),
    ) {
        let j = jaccard(&a, &b);
        prop_assert!((jaccard(&b, &a) - j).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((jaccard(&a, &a) - 1.0).abs() < 1e-12);
    }

    /// Levenshtein is a metric: identity, symmetry, triangle inequality.
    #[test]
    fn levenshtein_is_a_metric(
        a in "[ab]{0,8}",
        b in "[ab]{0,8}",
        c in "[ab]{0,8}",
    ) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    /// q-gram sets of equal strings are equal; disjoint alphabets share at
    /// most padding grams.
    #[test]
    fn qgram_set_consistency(s in "[a-d]{0,10}") {
        let a = char_qgram_set(&s, 3);
        let b = char_qgram_set(&s, 3);
        prop_assert_eq!(a, b);
    }

    /// TF/IDF weights are non-negative and rarer terms weigh more.
    #[test]
    fn tfidf_rare_terms_weigh_more(n_common in 2u32..20) {
        let model = TfIdf::new();
        for i in 0..n_common {
            model.observe(["common", if i == 0 { "rare" } else { "filler" }]);
        }
        prop_assert!(model.idf("rare") > model.idf("common"));
        prop_assert!(model.idf("common") >= 0.0);
    }

    /// Rocchio with only accepted feedback never decreases any weight.
    #[test]
    fn rocchio_accepts_never_decrease(
        profile in prop::collection::vec((0u32..10, 0.0f64..5.0), 0..8),
        accepted in prop::collection::vec((0u32..10, 0.0f64..5.0), 1..6),
    ) {
        let p = SparseVector::from_pairs(profile);
        let acc = vec![SparseVector::from_pairs(accepted)];
        let updated = rocchio_update(&p, &acc, &[], RocchioWeights { alpha: 1.0, beta: 0.5, gamma: 0.2 });
        for id in 0u32..10 {
            prop_assert!(updated.get(id) + 1e-12 >= p.get(id));
        }
    }
}
