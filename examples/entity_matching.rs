//! The §6 entity-matching rule `[a.isbn = b.isbn] AND [jaccard.3g(a.title,
//! b.title) >= 0.8] => match` run over a duplicated book catalog.
//!
//! ```text
//! cargo run --release --example entity_matching
//! ```

use rulekit::data::{CatalogGenerator, Taxonomy};
use rulekit::em::{
    run_matcher, synthesize_duplicates, BlockingKey, MatchAction, MatchRule, Predicate,
    RuleMatcher, Semantics,
};

fn main() {
    let taxonomy = Taxonomy::builtin();
    let mut generator = CatalogGenerator::with_seed(taxonomy.clone(), 55);
    let books = taxonomy.id_of("books").expect("built-in type");

    // A catalog where ~40% of books were re-listed by another vendor with
    // perturbed titles.
    let items = generator.generate_n_for_type(books, 1_500);
    let corpus = synthesize_duplicates(&items, 0.4, 56);
    println!("{} records, {} true duplicate pairs", corpus.records.len(), corpus.truth.len());
    let sample = corpus.truth.iter().next().expect("has duplicates");
    println!(
        "example duplicate pair:\n  a: {:?}\n  b: {:?}\n",
        corpus.records[sample.0 as usize].title, corpus.records[sample.1 as usize].title
    );

    // The paper's rule, printed the way the paper writes it.
    let matcher = RuleMatcher::paper_book_rules();
    for rule in matcher.rules() {
        let preds: Vec<String> = rule.predicates.iter().map(|p| p.to_string()).collect();
        println!("rule {:<16}: {} => match", rule.name, preds.join(" and "));
    }

    let blocking = [BlockingKey::Attr("ISBN".into()), BlockingKey::TitlePrefix(2)];
    let report = run_matcher(&corpus, &matcher, &blocking, 4);
    println!(
        "\nblocking produced {} candidate pairs (full cross product would be {})",
        report.candidates,
        corpus.records.len() * (corpus.records.len() - 1) / 2
    );
    println!(
        "matched {} pairs: precision {:.1}%, recall {:.1}%, F1 {:.1}%",
        report.predicted,
        100.0 * report.precision(),
        100.0 * report.recall(),
        100.0 * report.f1()
    );

    // A title-only baseline shows why analysts conjoin predicates.
    let loose = RuleMatcher::new(
        vec![MatchRule {
            name: "title-only".into(),
            predicates: vec![Predicate::TitleQgramJaccard { q: 3, threshold: 0.6 }],
            action: MatchAction::Match,
        }],
        Semantics::Declarative,
    );
    let loose_report = run_matcher(&corpus, &loose, &blocking, 4);
    println!(
        "title-only baseline: precision {:.1}%, recall {:.1}% — the conjunction wins",
        100.0 * loose_report.precision(),
        100.0 * loose_report.recall()
    );
}
