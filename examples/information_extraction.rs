//! The §6 IE pipeline: dictionary-based brand extraction with context
//! patterns, regex extractors for weight/size/color, and normalization
//! rules.
//!
//! ```text
//! cargo run --release --example information_extraction
//! ```

use rulekit::data::{CatalogGenerator, Taxonomy};
use rulekit::ie::{evaluate_brand, IePipeline, Normalizer};

fn main() {
    let taxonomy = Taxonomy::builtin();
    let mut generator = CatalogGenerator::with_seed(taxonomy.clone(), 66);
    let mut pipeline = IePipeline::standard(&taxonomy);

    // Normalization rules (the paper's IBM example, §6).
    pipeline.normalizer = Normalizer::paper_example();
    pipeline.normalizer.add_rule("Better Homes & Gardens", ["Better Homes"]);

    println!("== per-title extractions ==");
    for item in generator.generate(8) {
        let title = &item.product.title;
        println!("{title:?}");
        for e in pipeline.extract(title) {
            println!("    {:<7} = {:?}  (bytes {}..{})", e.field, e.value, e.span.0, e.span.1);
        }
    }

    // Accuracy against the generator's Brand Name attribute.
    let eval = generator.generate(3_000);
    let report = evaluate_brand(&pipeline, &eval);
    println!(
        "\nbrand extraction: {} eligible titles, {} correct, {} wrong → {:.1}% accuracy",
        report.eligible,
        report.correct,
        report.wrong,
        100.0 * report.accuracy()
    );

    println!(
        "\nnormalization: {:?} / {:?} / {:?} all become {:?}",
        "IBM",
        "IBM Inc.",
        "the Big Blue",
        pipeline.normalizer.normalize("the Big Blue"),
    );
}
