//! The network front-end end to end: a durable rulekit server on a real
//! TCP socket, exercised by the crate's own HTTP client — classify traffic,
//! a live rule edit through the CRUD surface (WAL-logged before the 201),
//! health, and a metrics scrape.
//!
//! ```text
//! cargo run --release --example net_server            # self-driving demo
//! cargo run --release --example net_server -- --serve # stay up for curl
//! ```
//!
//! With `--serve` the process prints the bound address and serves until
//! interrupted, so you can drive it by hand:
//!
//! ```text
//! curl -s localhost:PORT/health
//! curl -s -X POST localhost:PORT/classify -d '{"title": "diamond ring"}'
//! curl -s -X POST localhost:PORT/rulesets -d '{"rules": "sofas? -> sofas\n"}'
//! curl -s localhost:PORT/metrics | grep route_latency
//! ```

use rulekit::chimera::{Chimera, ChimeraConfig};
use rulekit::data::Taxonomy;
use rulekit::net::{Method, NetConfig, NetServer, RuleApp};
use rulekit::serve::ServeConfig;
use rulekit::store::{DurableConfig, MemStorage, Storage};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let serve_forever = std::env::args().any(|a| a == "--serve");

    // A durable app: rules recovered from (and WAL-logged to) storage. The
    // demo uses in-memory storage; swap in FileStorage for a real disk.
    let chimera = Arc::new(Chimera::new(Taxonomy::builtin(), ChimeraConfig::default()));
    let storage: Arc<dyn Storage> = Arc::new(MemStorage::new());
    let app = RuleApp::durable(
        chimera,
        storage,
        DurableConfig::default(),
        ServeConfig { refresh_interval: Duration::from_millis(10), ..Default::default() },
    )
    .expect("open durable app");

    let mut server = NetServer::start(app, NetConfig::default()).expect("bind");
    let addr = server.local_addr();
    println!("rulekit-net listening on http://{addr}");

    if serve_forever {
        println!("serving until interrupted (try the curl lines in the header comment)");
        loop {
            std::thread::sleep(Duration::from_secs(60));
        }
    }

    // --- self-driving demo over the real socket ---
    let mut client =
        rulekit::net::HttpClient::connect(addr, Duration::from_secs(5)).expect("connect");

    // 1. No rule matches rings yet: the service declines.
    let before =
        client.post_json("/classify", "{\"title\": \"diamond wedding ring\"}").expect("classify");
    println!("\nbefore any rule: {} {}", before.status, before.text());

    // 2. An analyst lands a rule through the CRUD surface. The 201 means
    //    the edit is WAL-logged — durable before it is acknowledged.
    let created = client
        .post_json("/rulesets", "{\"rules\": \"rings? -> rings\\n\", \"author\": \"demo\"}")
        .expect("create rules");
    println!("rule created:    {} {}", created.status, created.text());

    // 3. The background refresher hot-swaps the snapshot; the rule becomes
    //    visible to classify traffic without a restart.
    let started = Instant::now();
    loop {
        let r = client
            .post_json("/classify", "{\"title\": \"diamond wedding ring\"}")
            .expect("classify");
        if r.text().contains("\"type\":\"rings\"") {
            println!(
                "after the edit:  {} {} (visible after {:?})",
                r.status,
                r.text(),
                started.elapsed()
            );
            break;
        }
        assert!(started.elapsed() < Duration::from_secs(10), "edit never became visible");
        std::thread::sleep(Duration::from_millis(2));
    }

    // 4. A pipelined batch on one connection — highest-throughput shape.
    let batch = client
        .pipeline(Method::Post, "/classify", b"{\"title\": \"gold ring\"}", 32)
        .expect("pipeline");
    println!(
        "\npipelined 32 classifies: {} responses, all 200: {}",
        batch.len(),
        batch.iter().all(|r| r.status == 200)
    );

    // 5. Health and a metrics sample.
    let health = client.get("/health").expect("health");
    println!("health:  {}", health.text());
    let metrics = client.get("/metrics").expect("metrics");
    println!(
        "\nmetrics sample (per-route latency, of {} lines total):",
        metrics.text().lines().count()
    );
    for line in metrics
        .text()
        .lines()
        .filter(|l| l.contains("route_latency") && l.contains("quantile=\"0.99\""))
    {
        println!("  {line}");
    }

    // 6. Graceful drain: stop accepting, flush in-flight, shed the rest.
    server.shutdown();
    println!("\ndrained and shut down cleanly");
}
