//! Ongoing classification (§2.2): a never-ending batch stream with a
//! precision gate, crowd QA, analyst patching, drift, scale-down and
//! restore — the full operational story of the paper.
//!
//! ```text
//! cargo run --release --example ongoing_classification
//! ```

use rulekit::chimera::{Chimera, ChimeraConfig};
use rulekit::crowd::{CrowdConfig, CrowdSim};
use rulekit::data::{
    BatchStream, CatalogGenerator, DriftEvent, LabeledCorpus, StreamConfig, Taxonomy, VendorPool,
};

fn main() {
    let taxonomy = Taxonomy::builtin();
    let mut generator = CatalogGenerator::with_seed(taxonomy.clone(), 11);

    // Production pipeline: learning + per-head-noun whitelist rules.
    let mut chimera = Chimera::new(taxonomy.clone(), ChimeraConfig::default());
    chimera.set_auto_scale_down(true);
    chimera.train(LabeledCorpus::generate(&mut generator, 8_000).items());
    let mut rules = String::new();
    for id in taxonomy.ids() {
        let def = taxonomy.def(id);
        for head in &def.heads {
            rules.push_str(&format!(
                "{}s? -> {}\n",
                rulekit::regex::escape(&head.to_lowercase()),
                def.name
            ));
        }
    }
    chimera.add_rules(&rules).expect("rules parse");

    // The stream: irregular batches; a novel-vocabulary vendor takes over
    // the sofa feed at batch 3.
    let sofas = taxonomy.id_of("sofas").expect("built-in type");
    let stream_generator = CatalogGenerator::with_seed(taxonomy.clone(), 99);
    let vendors = VendorPool::generate(10, 0.0, 7);
    let mut stream = BatchStream::new(
        stream_generator,
        vendors,
        StreamConfig {
            seed: 3,
            min_batch: 300,
            max_batch: 900,
            drift: vec![DriftEvent::NovelVendor {
                at_batch: 3,
                alt_head_prob: 1.0,
                types: vec![sofas],
            }],
        },
    );
    let mut crowd = CrowdSim::new(CrowdConfig::default());

    println!("batch | size | rounds | est.prec | oracle prec | recall | suppressed");
    println!("------+------+--------+----------+-------------+--------+-----------");
    for i in 0..6 {
        let batch = stream.next_batch();
        let size = batch.items.len();
        let report = chimera.process_batch(&batch, &mut crowd);
        println!(
            "{:>5} | {:>4} | {:>6} | {:>7.1}% | {:>10.1}% | {:>5.1}% | {:?}",
            report.seq,
            size,
            report.rounds,
            100.0 * report.estimate.precision(),
            100.0 * report.oracle.precision(),
            100.0 * report.oracle.recall(),
            chimera.suppressed_types().iter().map(|t| taxonomy.name(*t)).collect::<Vec<_>>(),
        );
        // After the drift batch the Analysis stage has written 'couch' rules;
        // restore the suppressed type once patched.
        if i >= 4 {
            for ty in chimera.suppressed_types() {
                println!("      restoring {} after analyst repair", taxonomy.name(ty));
                chimera.restore(ty);
            }
        }
    }
    println!(
        "\nrule inventory after the session: {:?} (analysis added rules while patching)",
        chimera.rules.stats()
    );
}
