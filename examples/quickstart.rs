//! Quickstart: generate product items (Figure 1), stand up a Chimera
//! pipeline with a few analyst rules plus learning, and classify.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rulekit::chimera::{Chimera, ChimeraConfig, Decision};
use rulekit::data::{CatalogGenerator, LabeledCorpus, Taxonomy};

fn main() {
    let taxonomy = Taxonomy::builtin();
    let mut generator = CatalogGenerator::with_seed(taxonomy.clone(), 42);

    // --- Figure 1: product items are records of attribute-value pairs.
    println!("== product items ==");
    for name in ["area rugs", "rings", "laptop bags & cases"] {
        let ty = taxonomy.id_of(name).expect("built-in type");
        let item = generator.generate_for_type(ty);
        println!("{}\n", item.product.to_json());
    }

    // --- A Chimera pipeline: learning ensemble + analyst rules.
    let mut chimera = Chimera::new(taxonomy.clone(), ChimeraConfig::default());
    let training = LabeledCorpus::generate(&mut generator, 5_000);
    chimera.train(training.items());
    chimera
        .add_rules(
            "# analyst rules (whitelist, blacklist, attribute)\n\
             rings? -> rings\n\
             diamond.*trio sets? -> rings\n\
             (area|oriental|braided) rugs? -> area rugs\n\
             laptop (bag|case|sleeve)s? -> laptop bags & cases\n\
             laptop (bag|case|sleeve)s? -> NOT laptop computers\n\
             attr(ISBN) -> one of books; cookbooks; children's books\n",
        )
        .expect("rules parse");

    // --- Classify a few fresh items and show the explanations.
    println!("== classifications ==");
    let mut correct = 0;
    let items: Vec<_> = (0..10).map(|_| generator.generate_one()).collect();
    for item in &items {
        let decision = chimera.classify(&item.product);
        match &decision {
            Decision::Classified { ty, confidence, explanation } => {
                let ok = *ty == item.truth;
                correct += usize::from(ok);
                println!(
                    "[{}] {:?}\n     -> {} (confidence {:.2}, truth: {})",
                    if ok { "ok " } else { "ERR" },
                    item.product.title,
                    taxonomy.name(*ty),
                    confidence,
                    taxonomy.name(item.truth),
                );
                for line in explanation.iter().take(2) {
                    println!("        because: {line}");
                }
            }
            Decision::Declined { reason } => {
                println!("[dec] {:?}\n     declined: {reason}", item.product.title);
            }
        }
    }
    println!("\n{correct}/{} classified correctly", items.len());
}
