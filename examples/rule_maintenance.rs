//! Rule maintenance (§4): subsumption and overlap detection, quality
//! evaluation with an impact tracker, quarantine, and the consolidation
//! trade-off.
//!
//! ```text
//! cargo run --release --example rule_maintenance
//! ```

use rulekit::core::{RuleMeta, RuleParser, RuleRepository, TitleIndex};
use rulekit::data::{CatalogGenerator, Taxonomy};
use rulekit::eval::ImpactTracker;
use rulekit::maint::{blame_branches, consolidate, find_overlaps, find_subsumptions};

fn main() {
    let taxonomy = Taxonomy::builtin();
    let mut generator = CatalogGenerator::with_seed(taxonomy.clone(), 77);
    let parser = RuleParser::new(taxonomy.clone());
    let repo = RuleRepository::new();

    // Years of accumulated rules from multiple analysts.
    for line in [
        "jeans? -> jeans",
        "denim.*jeans? -> jeans", // two analysts, two eras (§4)
        "(abrasive|sand(er|ing))[ -](wheels?|discs?) -> abrasive wheels & discs",
        "abrasive.*(wheels?|discs?) -> abrasive wheels & discs",
        "rings? -> rings",
        "wedding bands? -> rings",
    ] {
        repo.add(parser.parse_rule(line).unwrap(), RuleMeta::default());
    }
    let rules = repo.enabled_snapshot();

    // A development corpus for the empirical detectors.
    let mut items = generator.generate(4_000);
    let abrasive = taxonomy.id_of("abrasive wheels & discs").unwrap();
    items.extend(generator.generate_n_for_type(abrasive, 150));
    let index = TitleIndex::build(items.iter().map(|i| i.product.title.as_str()));

    println!("== subsumption (the paper's jeans example) ==");
    for s in find_subsumptions(&rules, Some(&index), 3) {
        println!(
            "  {} is subsumed by {} ({:?}) — remove it",
            repo.get(s.subsumed).unwrap().condition,
            repo.get(s.by).unwrap().condition,
            s.evidence
        );
    }

    println!("\n== significant overlap (the wheels & discs pair) ==");
    for o in find_overlaps(&rules, &index, 0.5, 3) {
        println!(
            "  {}  ~  {}  (coefficient {:.2})",
            repo.get(o.a).unwrap().condition,
            repo.get(o.b).unwrap().condition,
            o.coefficient
        );
    }

    println!("\n== impact tracking for evaluation budgeting ==");
    let mut tracker = ImpactTracker::new(50);
    for item in &items {
        for rule in &rules {
            if rule.matches(&item.product) && tracker.record_touch(rule.id) {
                println!(
                    "  alert: un-evaluated rule {} became impactful ({} touches)",
                    repo.get(rule.id).unwrap().condition,
                    tracker.touches(rule.id)
                );
            }
        }
    }

    println!("\n== the consolidation trade-off ==");
    let ring_rules = repo.rules_for_type(taxonomy.id_of("rings").unwrap());
    let merged = consolidate(&ring_rules, "rings").expect("same-type whitelist rules");
    println!("  consolidated: {}", merged.source);
    let branches: Vec<String> = ring_rules
        .iter()
        .map(|r| r.condition.title_regex().unwrap().pattern().to_string())
        .collect();
    let bad_title = "gold ring earrings set";
    let (culprits, tested) = blame_branches(&branches, bad_title);
    println!(
        "  when the merged rule misfires on {bad_title:?}, the analyst tests {tested} branch(es) to find culprit(s) {culprits:?};\n  \
         with separate rules the executor reports the firing rule directly — the paper's reason to keep rules small"
    );
}
