//! The §5.2 rule generator: mine frequent token sequences from labeled
//! titles, select with Greedy-Biased, and install the result as a rule
//! module.
//!
//! ```text
//! cargo run --release --example rule_mining
//! ```

use rulekit::core::{IndexedExecutor, Provenance, RuleClassifier, RuleMeta, RuleRepository};
use rulekit::data::{CatalogGenerator, LabeledCorpus, Taxonomy};
use rulekit::gen::{generate_rules, MiningConfig, RuleGenConfig, Tier};
use std::sync::Arc;

fn main() {
    let taxonomy = Taxonomy::builtin();
    let mut generator = CatalogGenerator::with_seed(taxonomy.clone(), 33);
    // Analyst/crowd-labeled data with uniform type coverage (§5.2's use
    // case: types learning cannot handle yet).
    generator.set_type_weights(&vec![1.0; taxonomy.len()]);
    let corpus = LabeledCorpus::generate(&mut generator, 8_000);

    let cfg = RuleGenConfig {
        mining: MiningConfig { min_support: 0.03, min_len: 2, max_len: 4 },
        q_per_type: 50,
        alpha: 0.7,
        min_titles_per_type: 25,
        ..RuleGenConfig::default()
    };
    let report = generate_rules(&corpus, &taxonomy, &cfg);
    println!(
        "mined {} candidate sequences over {} types; selected {} high- and {} low-confidence rules",
        report.mined_candidates, report.types_processed, report.selected_high, report.selected_low
    );

    println!("\nsample generated rules:");
    for rule in report.rules.iter().take(12) {
        println!(
            "  [{}] {:<45} -> {:<22} (conf {:.2}, support {:.3})",
            match rule.tier {
                Tier::High => "high",
                Tier::Low => "low ",
            },
            rule.pattern,
            taxonomy.name(rule.type_id),
            rule.confidence,
            rule.support,
        );
    }

    // Install as a rule-based module and classify fresh items with it alone.
    let repo = RuleRepository::new();
    for rule in &report.rules {
        let meta = RuleMeta {
            provenance: Provenance::Mined,
            confidence: rule.confidence,
            ..Default::default()
        };
        repo.add(rule.to_spec(&taxonomy), meta);
    }
    let rules = repo.enabled_snapshot();
    let classifier = RuleClassifier::new(Arc::new(IndexedExecutor::new(rules.clone())), rules);

    let eval = generator.generate(2_000);
    let mut classified = 0;
    let mut correct = 0;
    for item in &eval {
        if let Some((ty, _)) = classifier.classify(&item.product).top() {
            classified += 1;
            correct += usize::from(ty == item.truth);
        }
    }
    println!(
        "\nrule-module-only classification of {} fresh items: {} classified, precision {:.1}%",
        eval.len(),
        classified,
        100.0 * correct as f64 / classified.max(1) as f64
    );
    println!("(the paper added exactly such a module and cut declined items by 18%)");
}
