//! Serving (§2's production setting): a sharded classification service over
//! a live Chimera pipeline. Traffic keeps flowing while an analyst adds a
//! rule; the background refresher hot-swaps the compiled snapshot, so the
//! fix reaches responses without a restart or pause. Overload shows up as
//! explicit `Overloaded` admissions instead of unbounded queues.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use rulekit::chimera::{Chimera, ChimeraConfig};
use rulekit::data::{CatalogGenerator, LabeledCorpus, Taxonomy};
use rulekit::serve::{Admission, ChimeraProvider, RuleService, ServeConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let taxonomy = Taxonomy::builtin();
    let mut generator = CatalogGenerator::with_seed(taxonomy.clone(), 17);

    // A trained pipeline with one deliberate gap: sofas have no rule AND no
    // training data, so the service initially declines them.
    let sofas = taxonomy.id_of("sofas").expect("built-in type");
    let mut chimera = Chimera::new(taxonomy.clone(), ChimeraConfig::default());
    let corpus = LabeledCorpus::generate(&mut generator, 4_000).without_types(&[sofas]);
    chimera.train(corpus.items());
    chimera.add_rules("rings? -> rings\nattr(ISBN) -> books\n").expect("rules parse");
    let chimera = Arc::new(chimera);

    // Start the service: 4 shard workers, bounded queues, 100ms deadlines.
    let service = RuleService::start(
        Arc::new(ChimeraProvider::new(chimera.clone())),
        ServeConfig {
            shards: 4,
            default_deadline: Some(Duration::from_millis(100)),
            refresh_interval: Duration::from_millis(10),
            ..Default::default()
        },
    );

    let sofa = generator.generate_for_type(sofas).product;

    let before = service.submit(sofa.clone()).expect_enqueued().wait().expect("served");
    println!(
        "before the rule edit: {:?} (snapshot v{})",
        before.decision.type_id(),
        before.snapshot_version
    );

    // The analyst patches the gap while the service keeps running — no
    // restart, no pause. The refresher notices the repository revision
    // change and hot-swaps a freshly compiled snapshot.
    chimera.add_rules("(sofa|couch|loveseat)s? -> sofas\n").expect("rule parses");

    let started = Instant::now();
    loop {
        let outcome = service.submit(sofa.clone()).expect_enqueued().wait().expect("served");
        if outcome.decision.type_id() == Some(sofas) {
            println!(
                "after the rule edit:  {:?} (snapshot v{}, visible after {:?}, {} swap(s))",
                outcome.decision.type_id(),
                outcome.snapshot_version,
                started.elapsed(),
                service.swap_count()
            );
            break;
        }
        assert!(started.elapsed() < Duration::from_secs(10), "swap never became visible");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Push a burst well past capacity: bounded queues reject instead of
    // buffering unboundedly, and queued requests past their deadline are
    // shed with an explicit outcome.
    let mut handles = Vec::new();
    let mut overloaded = 0usize;
    for i in 0..5_000 {
        let mut p = sofa.clone();
        p.id = i;
        match service.submit(p) {
            Admission::Enqueued(h) => handles.push(h),
            Admission::Overloaded => overloaded += 1,
        }
    }
    let mut served = 0usize;
    let mut shed = 0usize;
    for h in handles {
        match h.wait() {
            Ok(_) => served += 1,
            Err(_) => shed += 1,
        }
    }
    let m = service.metrics();
    println!("\nburst of 5000: served {served}, shed {shed}, rejected {overloaded}");
    println!(
        "metrics: p50 {:?}, p99 {:?}, degraded {} ({}% of completions), max queue depth {}",
        m.p50,
        m.p99,
        m.degraded_served,
        (100 * m.degraded_served).checked_div(m.completed).unwrap_or(0),
        m.max_queue_depth
    );

    // The same numbers as a Prometheus-style scrape (a few of the ~40 lines).
    println!("\ntext exposition sample:");
    for line in service
        .render_metrics()
        .lines()
        .filter(|l| l.contains("queue_depth") || l.contains("quantile=\"0.99\""))
    {
        println!("  {line}");
    }
}
