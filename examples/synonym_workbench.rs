//! The §5.1 synonym workbench: an analyst writes `(area | \syn) rugs?`,
//! the tool finds the rest of the disjunction in minutes.
//!
//! ```text
//! cargo run --release --example synonym_workbench
//! ```

use rulekit::data::{CatalogGenerator, Taxonomy};
use rulekit::gen::{ScriptedAnalyst, SynonymConfig, SynonymSession};

fn main() {
    let taxonomy = Taxonomy::builtin();
    let mut generator = CatalogGenerator::with_seed(taxonomy.clone(), 21);

    // Corpus: the development set D the analyst works against.
    let rugs = taxonomy.id_of("area rugs").expect("built-in type");
    let mut titles: Vec<String> = generator
        .generate_n_for_type(rugs, 800)
        .into_iter()
        .map(|i| i.product.title.to_lowercase())
        .collect();
    titles.extend(generator.generate(1500).into_iter().map(|i| i.product.title.to_lowercase()));

    // The analyst's rule under development (§5.1's running example shape).
    let input = r"(shaw | oriental | \syn) rugs?";
    println!("input rule:    {input} -> area rugs");
    println!("development set: {} titles\n", titles.len());

    let session = SynonymSession::new(input, &titles, SynonymConfig::default())
        .expect("golden synonyms occur in the corpus");
    println!("candidate synonyms extracted: {}", session.candidate_count());
    println!("first ranked page:");
    for cand in session.ranked().into_iter().take(10) {
        println!(
            "  {:<22} score {:.3}   e.g. {:?}",
            cand.phrase,
            cand.score,
            cand.samples.first().map(String::as_str).unwrap_or("")
        );
    }

    // The analyst in the loop: judges pages of 10, Rocchio re-ranks between
    // pages. The ScriptedAnalyst knows the taxonomy's qualifier pool.
    let truth: Vec<String> = taxonomy.def(rugs).qualifiers.clone();
    let mut analyst = ScriptedAnalyst::perfect(truth.iter().map(String::as_str));
    let session = SynonymSession::new(input, &titles, SynonymConfig::default()).unwrap();
    let outcome = session.run(&mut analyst);

    println!("\nafter {} iteration(s), {} candidates judged:", outcome.iterations, outcome.judged);
    println!("  accepted: {:?}", outcome.accepted);
    println!(
        "  analyst time: {:.1} minutes (the paper: minutes instead of hours)",
        analyst.minutes_spent()
    );
    println!("\nexpanded rule:\n  {} -> area rugs", outcome.expanded_pattern);
}
