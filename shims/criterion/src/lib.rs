//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides real wall-clock measurement (warm-up, timed iterations, mean /
//! min / max per iteration) without criterion's statistical machinery —
//! enough for the repo's benches to run, print comparable numbers, and act
//! as perf baselines, while building with no network access.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Target number of measured samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for measurement.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Wall-clock budget for warm-up.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.clone(), &id.to_string(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), config: self.clone(), throughput: None, _parent: self }
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: format!("{function_name}/{parameter}") }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing config and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Criterion,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config = self.config.clone().sample_size(n);
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config = self.config.clone().measurement_time(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one_with_throughput(self.config.clone(), &full, self.throughput, f);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one_with_throughput(self.config.clone(), &full, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (printing happens per-bench; kept for API parity).
    pub fn finish(self) {}
}

/// Hands the measurement loop to the benchmark closure.
pub struct Bencher {
    config: Criterion,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        // Measurement: up to `sample_size` samples within the time budget,
        // always at least one.
        let deadline = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(config: Criterion, id: &str, f: F) {
    run_one_with_throughput(config, id, None, f)
}

fn run_one_with_throughput<F: FnMut(&mut Bencher)>(
    config: Criterion,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher { config, samples: Vec::new() };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{id:<48} (no samples: routine never called b.iter)");
        return;
    }
    samples.sort_unstable();
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let median = samples[samples.len() / 2];
    let line = format!(
        "{id:<48} mean {:>12} median {:>12} min {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(median),
        fmt_duration(samples[0]),
        samples.len(),
    );
    match throughput {
        Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("{line}  [{rate:.0} elem/s]");
        }
        Some(Throughput::Bytes(n)) if mean.as_nanos() > 0 => {
            let rate = n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
            println!("{line}  [{rate:.1} MiB/s]");
        }
        _ => println!("{line}"),
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", d.as_secs_f64())
    }
}

/// Declares a group of benchmark functions, with optional shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_prints() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", 4), &vec![1u64, 2, 3, 4], |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        group.finish();
    }
}
