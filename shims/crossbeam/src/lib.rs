//! Offline stand-in for `crossbeam::scope`, implemented on
//! `std::thread::scope` (stable since Rust 1.63). Only the scoped-spawn
//! surface rulekit uses is provided: `crossbeam::scope(|s| { s.spawn(|_|
//! …) })` with crossbeam's `Result`-returning outer call.

pub mod thread {
    use std::panic::AssertUnwindSafe;

    /// A scope handle; crossbeam passes it to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread; `Err` carries the panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again
        /// (crossbeam's signature), allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&scope)) }
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before
    /// returning. Returns `Err` if the closure (or an unjoined child)
    /// panicked, matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u32, 2, 3, 4];
        let total = crate::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|c| s.spawn(move |_| c.iter().sum::<u32>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn child_panic_is_catchable_at_join() {
        let result = crate::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("worker died") });
            h.join()
        });
        // Outer scope succeeded; the join result carries the panic.
        assert!(result.unwrap().is_err());
    }

    #[test]
    fn unjoined_child_panic_fails_scope() {
        let result = crate::scope(|s| {
            s.spawn(|_| panic!("dropped handle"));
        });
        assert!(result.is_err());
    }
}
