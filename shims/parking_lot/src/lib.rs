//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! `Mutex` and `RwLock` with non-poisoning, guard-returning lock methods.
//! Backed by `std::sync` primitives; a poisoned std lock is transparently
//! recovered (parking_lot has no poisoning, and every rulekit critical
//! section leaves the data structurally valid even if a panic interrupts a
//! higher-level invariant).

use std::fmt;
use std::sync::PoisonError;

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is held.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Non-blocking acquire.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock whose `read()`/`write()` never return a `Result`.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Blocks until shared access is held.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until exclusive access is held.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                f.debug_tuple("RwLock").field(&&*e.into_inner()).finish()
            }
            Err(std::sync::TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(3);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 4);
        assert!(format!("{m:?}").contains('4'));
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poison_is_recovered() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1; // must not panic
        assert_eq!(*m.lock(), 1);
    }
}
