//! `any::<T>()` support for the types rulekit's tests generate.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// The whole-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// `any::<bool>()`: a fair coin.
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! any_int {
    ($($t:ty => $name:ident),* $(,)?) => {$(
        /// Whole-domain integer strategy.
        pub struct $name;

        impl Strategy for $name {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = $name;
            fn arbitrary() -> $name {
                $name
            }
        }
    )*};
}

any_int!(u8 => AnyU8, u16 => AnyU16, u32 => AnyU32, u64 => AnyU64, usize => AnyUsize,
         i8 => AnyI8, i16 => AnyI16, i32 => AnyI32, i64 => AnyI64, isize => AnyIsize);
