//! Collection strategies (`prop::collection::{vec, hash_set}`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// A size specification: an exact count or a half-open range.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.max <= self.min + 1 {
            self.min
        } else {
            self.min + rng.below(self.max - self.min)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max: exact + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end }
    }
}

/// `Vec` strategy: `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Output of [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `HashSet` strategy: aims for `size` distinct elements (best effort when
/// the element domain is smaller than the requested size, like upstream).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy { element, size: size.into() }
}

/// Output of [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq + 'static,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let want = self.size.sample(rng);
        let mut out = HashSet::with_capacity(want);
        // Bounded attempts: small domains can't fill large sets.
        for _ in 0..want.saturating_mul(4) {
            if out.len() >= want {
                break;
            }
            out.insert(self.element.generate(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("collection-shim", 1)
    }

    #[test]
    fn vec_sizes_and_elements() {
        let mut r = rng();
        let strat = vec(0u32..5, 2..7);
        for _ in 0..100 {
            let v = strat.generate(&mut r);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let exact = vec(0u32..5, 82usize);
        assert_eq!(exact.generate(&mut r).len(), 82);
    }

    #[test]
    fn hash_set_distinct_best_effort() {
        let mut r = rng();
        let strat = hash_set(0u32..1000, 5..6);
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut r).len(), 5);
        }
        // Domain of 2 can never produce 5 distinct values; must not hang.
        let tiny = hash_set(0u32..2, 5..6);
        assert!(tiny.generate(&mut r).len() <= 2);
    }
}
