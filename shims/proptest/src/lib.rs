//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot fetch crates, so this shim re-implements the
//! property-testing surface rulekit's tests rely on: the [`proptest!`] macro,
//! `prop_assert*`, range / string-pattern / tuple / collection / `select` /
//! `Just` / `prop_oneof!` strategies, `prop_map`, and bounded
//! `prop_recursive`.
//!
//! Differences from upstream, deliberate and documented:
//!
//! * **No shrinking.** A failing case reports its deterministic case seed;
//!   rerunning the test replays the identical sequence, which is what the
//!   repo's debugging workflow needs.
//! * **Generation only.** Strategies are random generators, not integrated
//!   shrink trees; `prop_recursive` unrolls to a fixed depth with a
//!   leaf-biased union at each level.
//! * **String patterns** support the `[class]{m,n}`-style subset the tests
//!   use (char classes with ranges and escapes, counted repetition,
//!   literals), not full regex.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// `prop::…` paths (`prop::collection::vec`, `prop::sample::select`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions over generated inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(256))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __id = ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(__id, __case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    ::std::panic!(
                        "proptest `{}` failed at case {} (deterministic; rerun reproduces): {}",
                        __id, __case, __e
                    );
                }
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($item:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($item)),+
        ])
    };
}
