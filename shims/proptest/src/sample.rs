//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform choice from a fixed list of values.
pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select over empty options");
    Select { options }
}

/// Output of [`select`].
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + 'static> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_covers_all_options() {
        let mut rng = TestRng::deterministic("sample-shim", 0);
        let strat = select(vec!['a', 'b', 'c']);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
