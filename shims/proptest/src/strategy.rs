//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of test values.
///
/// Unlike upstream proptest, a strategy here is purely a random generator
/// (no shrink tree); see the crate docs for the rationale.
pub trait Strategy: 'static {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map { strategy: self, map: f }
    }

    /// Recursive strategy: `depth` levels of `expand` applied over this
    /// leaf, each level a leaf-biased union so generated trees stay small.
    /// `_max_nodes` and `_items_per_collection` are accepted for signature
    /// compatibility and unused.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _max_nodes: u32,
        _items_per_collection: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        S: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = expand(current).boxed();
            current = Union::weighted(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }

    /// Type-erased, cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy { inner: Rc::new(self) }
    }
}

// Type-erasure plumbing: `Rc<dyn ErasedStrategy<T>>` behind `BoxedStrategy`.
trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Clonable, type-erased strategy (single-threaded, like upstream's use in
/// tests).
pub struct BoxedStrategy<T> {
    inner: Rc<dyn ErasedStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: self.inner.clone() }
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.erased_generate(rng)
    }

    fn boxed(self) -> BoxedStrategy<T> {
        self
    }
}

/// Always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U + 'static,
    U: 'static,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.strategy.generate(rng))
    }
}

/// Random choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    branches: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform union.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Union::weighted(branches.into_iter().map(|b| (1, b)).collect())
    }

    /// Weighted union.
    pub fn weighted(branches: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight = branches.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "union weights must not all be zero");
        Union { branches, total_weight }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = ((rng.next_u64() as u128 * self.total_weight as u128) >> 64) as u64;
        for (w, branch) in &self.branches {
            if pick < *w as u64 {
                return branch.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight arithmetic covers the full range")
    }
}

// --- Ranges as strategies -------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy over empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// --- Tuples of strategies -------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// --- String patterns ------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
