//! Generation from the string-pattern subset rulekit's tests use:
//! sequences of literal characters and `[…]` character classes, each
//! optionally followed by `{n}` or `{m,n}` counted repetition. Classes
//! support `a-z` ranges and `\x` escapes. Anything else panics loudly so a
//! future test can't silently get wrong data.

use crate::test_runner::TestRng;

enum Unit {
    Literal(char),
    Class(Vec<char>),
}

struct Parsed {
    unit: Unit,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Parsed> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut units = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let unit = match chars[i] {
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let (c, escaped) = if chars[i] == '\\' {
                        i += 1;
                        assert!(i < chars.len(), "dangling escape in pattern {pattern:?}");
                        (chars[i], true)
                    } else {
                        (chars[i], false)
                    };
                    // Range `a-z` (a literal '-' at the start/end of the
                    // class, or escaped, falls through to the single-char
                    // case below).
                    if !escaped && i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']'
                    {
                        let hi = chars[i + 2];
                        assert!(c <= hi, "inverted class range in pattern {pattern:?}");
                        for v in c..=hi {
                            set.push(v);
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // consume ']'
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                Unit::Class(set)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in pattern {pattern:?}");
                let c = chars[i];
                i += 1;
                Unit::Literal(c)
            }
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '*' | '+' | '?' | '.' | '^' | '$'),
                    "unsupported regex feature {c:?} in pattern {pattern:?} \
                     (the proptest shim handles literals, classes and counted repeats)"
                );
                i += 1;
                Unit::Literal(c)
            }
        };
        // Optional {n} / {m,n} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repeat in pattern {pattern:?}"))
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repeat lower bound"),
                    n.trim().parse().expect("repeat upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted repeat bounds in pattern {pattern:?}");
        units.push(Parsed { unit, min, max });
    }
    units
}

/// Draws one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for p in parse(pattern) {
        let count = p.min + if p.max > p.min { rng.below(p.max - p.min + 1) } else { 0 };
        for _ in 0..count {
            match &p.unit {
                Unit::Literal(c) => out.push(*c),
                Unit::Class(set) => out.push(set[rng.below(set.len())]),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::deterministic("string-shim", 0)
    }

    #[test]
    fn class_with_ranges_and_escapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = generate_from_pattern("[a-zA-Z0-9 '\\-\\.,!]{0,60}", &mut r);
            assert!(s.len() <= 60);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric()
                    || matches!(c, ' ' | '\'' | '-' | '.' | ',' | '!')));
        }
    }

    #[test]
    fn counted_repeats_respect_bounds() {
        let mut r = rng();
        let mut lengths = std::collections::HashSet::new();
        for _ in 0..200 {
            let s = generate_from_pattern("[ab]{2,5}", &mut r);
            assert!((2..=5).contains(&s.len()));
            lengths.insert(s.len());
            assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
        assert!(lengths.len() > 1, "repeat count varies");
    }

    #[test]
    fn metacharacters_in_class_are_literal() {
        let mut r = rng();
        let s = generate_from_pattern("[a-z .*?(){}\\[\\]|+^$\\\\]{10,10}", &mut r);
        assert_eq!(s.chars().count(), 10);
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut r = rng();
        assert_eq!(generate_from_pattern("abc", &mut r), "abc");
        assert_eq!(generate_from_pattern("x{3}", &mut r), "xxx");
    }
}
