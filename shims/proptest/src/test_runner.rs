//! Test execution support: per-test configuration, the deterministic RNG,
//! and the error type `prop_assert*` returns.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case RNG: seeded from the test's path and case index,
/// so every run of the binary replays identical sequences.
pub struct TestRng {
    rng: StdRng,
}

impl TestRng {
    /// RNG for case `case` of the test identified by `id`.
    pub fn deterministic(id: &str, case: u32) -> Self {
        // FNV-1a over the id, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { rng: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.rng.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.next_f64()
    }
}
