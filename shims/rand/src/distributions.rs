//! Uniform range sampling (`Rng::gen_range` support).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by widening multiply (Lemire reduction);
/// bias is at most 2⁻⁶⁴·span, irrelevant at rulekit's sample counts.
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Whole-domain range: every u64 pattern is a valid value.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let f = rng.next_f64() as $t;
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                // [0, 1] inclusive via 53-bit denominator.
                let f = ((rng.next_u64() >> 11) as f64
                    / ((1u64 << 53) - 1) as f64) as $t;
                lo + f * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2000 {
            let v: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
            let w: f64 = rng.gen_range(0.4..=0.8);
            assert!((0.4..=0.8).contains(&w));
        }
    }

    #[test]
    fn int_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
