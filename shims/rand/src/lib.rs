//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses. The build environment has no network access and no vendored
//! registry, so the real `rand` cannot be fetched; this shim keeps the same
//! call sites compiling (`StdRng`, `SeedableRng`, `Rng::{gen_range,
//! gen_bool}`, `seq::SliceRandom`) on top of a from-scratch xoshiro256++
//! generator. Streams differ from upstream `rand`, but every consumer in
//! rulekit only requires seed-determinism, not upstream-identical output.

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Core source of randomness: 64 random bits at a time.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
