//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ seeded via splitmix64.
///
/// Not the upstream `rand::rngs::StdRng` algorithm (ChaCha12); rulekit only
/// relies on seed-determinism, and xoshiro256++ passes BigCrush while
/// needing no external code.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
