//! Slice sampling helpers (`rand::seq::SliceRandom`).

use crate::Rng;

/// Random selection and shuffling over slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// `amount` distinct elements in random order (fewer if the slice is
    /// shorter). Returned as an iterator of references, like upstream.
    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn choose_multiple<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let amount = amount.min(self.len());
        // Partial Fisher–Yates over an index vector.
        let mut idx: Vec<usize> = (0..self.len()).collect();
        for i in 0..amount {
            let j = rng.gen_range(i..idx.len());
            idx.swap(i, j);
        }
        idx.truncate(amount);
        idx.into_iter().map(|i| &self[i]).collect::<Vec<_>>().into_iter()
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3, 4, 5];
        assert!(items.contains(items.choose(&mut rng).unwrap()));

        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle is a permutation");
        assert_ne!(v, orig, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(10);
        let items: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = items.choose_multiple(&mut rng, 8).copied().collect();
        assert_eq!(picked.len(), 8);
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 8, "no duplicates");
        // Over-asking caps at slice length.
        assert_eq!(items.choose_multiple(&mut rng, 99).count(), 20);
    }
}
