//! # rulekit
//!
//! A rule-management toolkit for semantics-intensive Big Data systems — a
//! full reproduction of *"Why Big Data Industrial Systems Need Rules and
//! What We Can Do About It"* (SIGMOD 2015).
//!
//! The paper's thesis: industrial classification/IE/EM systems live and die
//! by hand-crafted rules used *alongside* learning and crowdsourcing, and
//! the tens of thousands of rules they accumulate need real management
//! machinery — generation, evaluation, execution, optimization, and
//! maintenance. `rulekit` builds that machinery, plus every substrate it
//! needs, from scratch:
//!
//! | Module | Contents |
//! |---|---|
//! | [`regex`] | From-scratch regex engine (parser → NFA → Pike VM) with required-literal analysis and containment |
//! | [`text`] | Tokenization, TF/IDF, similarity, Rocchio feedback |
//! | [`data`] | Synthetic product catalog, vendors, batch streams, concept drift |
//! | [`crowd`] | Simulated crowdsourcing with worker noise and budgets |
//! | [`learn`] | NB / k-NN / centroid / perceptron classifiers + voting ensemble |
//! | [`obs`] | Metrics registry, wait-free counters & latency histograms, span timers, text exposition |
//! | [`core`] | Rule model & DSL, repository, indexed executors, property audits |
//! | [`gen`] | §5.1 synonym finder and §5.2 rule generation (Algorithms 1–2) |
//! | [`eval`] | §4 rule-quality evaluation methods with crowd-cost accounting |
//! | [`maint`] | Subsumption, overlap, imprecision, drift monitoring |
//! | [`chimera`] | The Figure 2 pipeline end to end, with QA loop and scale-down |
//! | [`serve`] | Sharded serving tier: hot snapshot swaps, backpressure, degradation, metrics |
//! | [`store`] | Durable rule repository: write-ahead log, checkpoints, crash recovery, fault injection |
//! | [`net`] | TCP/HTTP front-end: hardened HTTP/1.1 codec, JSON wire protocol, classify + rule CRUD + health + metrics routes |
//! | [`em`] | §6 entity matching: predicates, semantics, blocking |
//! | [`ie`] | §6 information extraction: dictionaries, regex extractors |
//!
//! ## Quickstart
//!
//! ```
//! use rulekit::data::{CatalogGenerator, Taxonomy};
//! use rulekit::chimera::{Chimera, ChimeraConfig};
//!
//! let taxonomy = Taxonomy::builtin();
//! let mut generator = CatalogGenerator::with_seed(taxonomy.clone(), 7);
//!
//! // A Chimera pipeline with a couple of analyst rules.
//! let mut chimera = Chimera::new(taxonomy.clone(), ChimeraConfig::default());
//! chimera.train(&generator.generate(2000));
//! chimera.add_rules("rings? -> rings\nattr(ISBN) -> books").unwrap();
//!
//! let item = generator.generate_for_type(taxonomy.id_of("rings").unwrap());
//! let decision = chimera.classify(&item.product);
//! assert_eq!(decision.type_id(), Some(item.truth));
//! ```

pub use rulekit_chimera as chimera;
pub use rulekit_core as core;
pub use rulekit_crowd as crowd;
pub use rulekit_data as data;
pub use rulekit_em as em;
pub use rulekit_eval as eval;
pub use rulekit_gen as gen;
pub use rulekit_ie as ie;
pub use rulekit_learn as learn;
pub use rulekit_maint as maint;
pub use rulekit_net as net;
pub use rulekit_obs as obs;
pub use rulekit_regex as regex;
pub use rulekit_serve as serve;
pub use rulekit_store as store;
pub use rulekit_text as text;
