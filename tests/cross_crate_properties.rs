//! Cross-crate property tests: executor equivalence, order independence,
//! and EM semantics invariants over generated data.

use proptest::prelude::*;
use rulekit::core::{
    audit_order_independence, IndexedExecutor, LiteralScanExecutor, NaiveExecutor, RuleExecutor,
    RuleMeta, RuleParser, RuleRepository,
};
use rulekit::data::{CatalogGenerator, Taxonomy};
use rulekit::em::{MatchAction, MatchRule, Predicate, RuleMatcher, Semantics};

/// A pool of realistic rule lines to sample subsets from.
fn rule_pool() -> Vec<String> {
    let taxonomy = Taxonomy::builtin();
    let mut lines = Vec::new();
    for id in taxonomy.ids().take(40) {
        let def = taxonomy.def(id);
        let head = def.heads[0].to_lowercase();
        lines.push(format!("{}s? -> {}", rulekit::regex::escape(&head), def.name));
        if let Some(q) = def.qualifiers.first() {
            lines.push(format!(
                "{}.*{}s? -> {}",
                rulekit::regex::escape(&q.to_lowercase()),
                rulekit::regex::escape(&head),
                def.name
            ));
        }
    }
    lines.push("laptop (bag|case|sleeve)s? -> NOT laptop computers".into());
    lines.push("attr(ISBN) -> one of books; cookbooks; children's books".into());
    lines
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The trigram-indexed and literal-scan executors agree with the naive
    /// executor on any rule subset and any generated products, and the
    /// literal-scan executor's candidate sets never exceed the trigram
    /// index's.
    #[test]
    fn indexed_executors_equal_naive(
        seed in 0u64..1000,
        mask in prop::collection::vec(any::<bool>(), 82),
    ) {
        let taxonomy = Taxonomy::builtin();
        let parser = RuleParser::new(taxonomy.clone());
        let repo = RuleRepository::new();
        for (line, keep) in rule_pool().iter().zip(mask.iter().cycle()) {
            if *keep {
                repo.add(parser.parse_rule(line).unwrap(), RuleMeta::default());
            }
        }
        let rules = repo.enabled_snapshot();
        let naive = NaiveExecutor::new(rules.clone());
        let indexed = IndexedExecutor::new(rules.clone());
        let scan = LiteralScanExecutor::new(rules);

        let mut generator = CatalogGenerator::with_seed(taxonomy, seed);
        for item in generator.generate(60) {
            let mut a = naive.matching_rules(&item.product);
            let mut b = indexed.matching_rules(&item.product);
            let mut c = scan.matching_rules(&item.product);
            a.sort_unstable();
            b.sort_unstable();
            c.sort_unstable();
            prop_assert_eq!(&a, &b, "trigram disagreement on {:?}", item.product.title);
            prop_assert_eq!(&a, &c, "literal-scan disagreement on {:?}", item.product.title);
            prop_assert!(
                scan.candidates_considered(&item.product)
                    <= indexed.candidates_considered(&item.product),
                "literal-scan considered more than trigram on {:?}", item.product.title
            );
        }
    }

    /// Whitelist-before-blacklist phase aggregation is order-independent for
    /// any sampled rule set (§4's example property).
    #[test]
    fn rule_system_is_order_independent(seed in 0u64..1000) {
        let taxonomy = Taxonomy::builtin();
        let parser = RuleParser::new(taxonomy.clone());
        let repo = RuleRepository::new();
        for line in rule_pool() {
            repo.add(parser.parse_rule(&line).unwrap(), RuleMeta::default());
        }
        let rules = repo.enabled_snapshot();
        let mut generator = CatalogGenerator::with_seed(taxonomy, seed);
        let products: Vec<_> = generator.generate(50).into_iter().map(|i| i.product).collect();
        let audit = audit_order_independence(&rules, &products, 4, seed);
        prop_assert!(audit.holds(), "counterexample {:?}", audit.counterexample);
    }

    /// Declarative EM semantics never depends on rule order; decisions are
    /// symmetric in rule permutation.
    #[test]
    fn declarative_em_semantics_order_invariant(seed in 0u64..1000) {
        let taxonomy = Taxonomy::builtin();
        let mut generator = CatalogGenerator::with_seed(taxonomy.clone(), seed);
        let books = taxonomy.id_of("books").unwrap();
        let items = generator.generate_n_for_type(books, 30);

        let rules = vec![
            MatchRule {
                name: "title".into(),
                predicates: vec![Predicate::TitleQgramJaccard { q: 3, threshold: 0.7 }],
                action: MatchAction::Match,
            },
            MatchRule {
                name: "isbn".into(),
                predicates: vec![Predicate::AttrEqual { attr: "ISBN".into() }],
                action: MatchAction::Match,
            },
            MatchRule {
                name: "pages-present".into(),
                predicates: vec![Predicate::BothHave { attr: "Pages".into() }],
                action: MatchAction::NonMatch,
            },
        ];
        let fwd = RuleMatcher::new(rules.clone(), Semantics::Declarative);
        let rev = fwd.reversed();
        for (i, a) in items.iter().enumerate() {
            for b in items.iter().skip(i + 1) {
                prop_assert_eq!(
                    fwd.matches(&a.product, &b.product),
                    rev.matches(&a.product, &b.product)
                );
            }
        }
    }

    /// The title index finds exactly the titles a full scan finds, for any
    /// analyst-shaped pattern.
    #[test]
    fn title_index_matches_equal_scan(seed in 0u64..1000, pattern_idx in 0usize..6) {
        use rulekit::core::{compile_pattern, TitleIndex};
        let patterns = [
            "rings?",
            "diamond.*trio sets?",
            "(area|oriental|braided) rugs?",
            r"\w+ oils?",
            "laptop (bag|case|sleeve)s?",
            "(motor | engine) oils?",
        ];
        let taxonomy = Taxonomy::builtin();
        let mut generator = CatalogGenerator::with_seed(taxonomy, seed);
        let titles: Vec<String> = generator
            .generate(300)
            .into_iter()
            .map(|i| i.product.title)
            .collect();
        let index = TitleIndex::build(titles.iter().map(String::as_str));
        let regex = compile_pattern(patterns[pattern_idx]).unwrap();
        prop_assert_eq!(index.matching(&regex), index.matching_scan(&regex));
    }
}
