//! End-to-end integration: the full Chimera loop over a live stream, with
//! crowd QA, drift, scale-down and restore — every crate working together.

use rulekit::chimera::{Chimera, ChimeraConfig};
use rulekit::crowd::{CrowdConfig, CrowdSim};
use rulekit::data::{
    BatchStream, CatalogGenerator, DriftEvent, LabeledCorpus, StreamConfig, Taxonomy, VendorPool,
};

fn production_chimera(seed: u64) -> Chimera {
    let taxonomy = Taxonomy::builtin();
    let mut generator = CatalogGenerator::with_seed(taxonomy.clone(), seed);
    let mut chimera = Chimera::new(taxonomy.clone(), ChimeraConfig { seed, ..Default::default() });
    chimera.train(LabeledCorpus::generate(&mut generator, 4_000).items());
    let mut rules = String::new();
    for id in taxonomy.ids() {
        let def = taxonomy.def(id);
        for head in &def.heads {
            rules.push_str(&format!(
                "{}s? -> {}\n",
                rulekit::regex::escape(&head.to_lowercase()),
                def.name
            ));
        }
    }
    rules.push_str("laptop (bag|case|sleeve)s? -> NOT laptop computers\n");
    chimera.add_rules(&rules).expect("rules parse");
    chimera
}

#[test]
fn precision_gate_holds_over_a_healthy_stream() {
    let mut chimera = production_chimera(101);
    let taxonomy = chimera.taxonomy().clone();
    let generator = CatalogGenerator::with_seed(taxonomy, 202);
    let vendors = VendorPool::generate(6, 0.0, 3);
    let mut stream = BatchStream::new(
        generator,
        vendors,
        StreamConfig { seed: 4, min_batch: 200, max_batch: 500, ..Default::default() },
    );
    let mut crowd = CrowdSim::new(CrowdConfig { seed: 9, ..Default::default() });

    for _ in 0..3 {
        let batch = stream.next_batch();
        let report = chimera.process_batch(&batch, &mut crowd);
        assert!(report.accepted, "batch {} missed the gate: {:?}", report.seq, report.estimate);
        assert!(
            report.oracle.precision() >= 0.92,
            "oracle precision {} below gate",
            report.oracle.precision()
        );
        assert!(report.oracle.recall() >= 0.85, "recall {}", report.oracle.recall());
    }
}

#[test]
fn drift_is_patched_and_recovery_survives_restore() {
    let mut chimera = production_chimera(111);
    chimera.set_auto_scale_down(true);
    let taxonomy = chimera.taxonomy().clone();
    let sofas = taxonomy.id_of("sofas").unwrap();

    let generator = CatalogGenerator::with_seed(taxonomy.clone(), 212);
    let vendors = VendorPool::generate(6, 0.0, 3);
    let mut stream = BatchStream::new(
        generator,
        vendors,
        StreamConfig {
            seed: 5,
            min_batch: 400,
            max_batch: 600,
            drift: vec![DriftEvent::NovelVendor {
                at_batch: 1,
                alt_head_prob: 1.0,
                types: vec![sofas],
            }],
        },
    );
    let mut crowd = CrowdSim::new(CrowdConfig { seed: 10, ..Default::default() });

    // Healthy batch, then pure drifted sofa batches.
    let healthy = stream.next_batch();
    let report = chimera.process_batch(&healthy, &mut crowd);
    assert!(report.oracle.precision() >= 0.9);

    let before_rules = chimera.rules.len();
    for _ in 0..2 {
        let drifted = stream.next_batch();
        chimera.process_batch(&drifted, &mut crowd);
    }
    // The Analysis stage must have written novel-vocabulary rules.
    assert!(chimera.rules.len() > before_rules, "analysis added no rules");

    // Restore anything scaled down; the patched system must now classify
    // drifted titles correctly.
    for ty in chimera.suppressed_types() {
        chimera.restore(ty);
    }
    let drifted = stream.next_batch();
    let report = chimera.process_batch(&drifted, &mut crowd);
    assert!(
        report.oracle.recall() >= 0.9,
        "post-restore recall {} on drifted stream",
        report.oracle.recall()
    );
    assert!(report.oracle.precision() >= 0.9);
}

#[test]
fn explanations_cite_fired_rules() {
    let chimera = production_chimera(121);
    let taxonomy = chimera.taxonomy().clone();
    let mut generator = CatalogGenerator::with_seed(taxonomy.clone(), 222);
    let rings = taxonomy.id_of("rings").unwrap();
    let item = generator.generate_for_type(rings);
    match chimera.classify(&item.product) {
        rulekit::chimera::Decision::Classified { ty, explanation, .. } => {
            assert_eq!(ty, rings);
            assert!(
                explanation.iter().any(|e| e.contains("whitelist")),
                "no rule evidence in {explanation:?}"
            );
        }
        other => panic!("expected classification, got {other:?}"),
    }
}

#[test]
fn scale_down_is_immediate_and_reversible() {
    let mut chimera = production_chimera(131);
    let taxonomy = chimera.taxonomy().clone();
    let mut generator = CatalogGenerator::with_seed(taxonomy.clone(), 232);
    let rugs = taxonomy.id_of("area rugs").unwrap();

    let items: Vec<_> = (0..20).map(|_| generator.generate_for_type(rugs)).collect();
    let classified = |c: &Chimera| {
        items.iter().filter(|i| c.classify(&i.product).type_id() == Some(rugs)).count()
    };
    assert!(classified(&chimera) >= 18);
    chimera.scale_down(rugs, "integration test");
    assert_eq!(classified(&chimera), 0, "suppressed type must never be predicted");
    chimera.restore(rugs);
    assert!(classified(&chimera) >= 18);
}
