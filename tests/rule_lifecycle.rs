//! Integration: the full rule lifecycle across crates — generate (§5.2),
//! evaluate (§4), maintain (§4) — against one shared corpus.

use rulekit::core::{
    IndexedExecutor, Provenance, RuleMeta, RuleParser, RuleRepository, TitleIndex,
};
use rulekit::crowd::{CrowdConfig, CrowdSim};
use rulekit::data::{CatalogGenerator, LabeledCorpus, Taxonomy};
use rulekit::eval::{compute_coverages, per_rule_eval};
use rulekit::gen::{generate_rules, MiningConfig, RuleGenConfig};
use rulekit::maint::{find_imprecise, find_subsumptions, quarantine_imprecise};

#[test]
fn mined_rules_survive_evaluation_and_maintenance() {
    let taxonomy = Taxonomy::builtin();
    let mut generator = CatalogGenerator::with_seed(taxonomy.clone(), 301);
    generator.set_type_weights(&vec![1.0; taxonomy.len()]);
    let train = LabeledCorpus::generate(&mut generator, 5_000);
    let eval_corpus = LabeledCorpus::generate(&mut generator, 3_000);

    // Generate (§5.2).
    let cfg = RuleGenConfig {
        mining: MiningConfig { min_support: 0.05, min_len: 2, max_len: 4 },
        q_per_type: 30,
        min_titles_per_type: 25,
        ..RuleGenConfig::default()
    };
    let report = generate_rules(&train, &taxonomy, &cfg);
    assert!(report.types_processed >= 50, "only {} types processed", report.types_processed);
    assert!(!report.rules.is_empty());

    // Install.
    let repo = RuleRepository::new();
    for r in &report.rules {
        let meta = RuleMeta {
            provenance: Provenance::Mined,
            confidence: r.confidence,
            ..Default::default()
        };
        repo.add(r.to_spec(&taxonomy), meta);
    }
    let rules = repo.enabled_snapshot();

    // Evaluate (§4 Method 2 with overlap exploitation).
    let executor = IndexedExecutor::new(rules.clone());
    let coverages = compute_coverages(&rules, &executor, eval_corpus.items());
    let mut crowd = CrowdSim::new(CrowdConfig { seed: 302, ..Default::default() });
    let eval = per_rule_eval(&coverages, eval_corpus.items(), 8, true, &mut crowd, 303);

    // Zero-training-error rules should mostly hold up out of sample: the
    // median estimated precision stays high.
    let mut precisions: Vec<f64> =
        eval.estimates.values().filter(|e| e.samples >= 5).map(|e| e.precision()).collect();
    precisions.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert!(!precisions.is_empty());
    let median = precisions[precisions.len() / 2];
    assert!(median >= 0.9, "median mined-rule precision {median}");

    // Maintain: quarantine whatever slipped through.
    let flagged = find_imprecise(&eval.estimates, 0.8, 5);
    let disabled = quarantine_imprecise(&repo, &flagged);
    assert_eq!(disabled.len(), flagged.len());
    // The repository reflects the quarantine.
    assert_eq!(repo.enabled_snapshot().len(), rules.len() - disabled.len());
}

#[test]
fn duplicate_analyst_rules_are_caught_by_subsumption() {
    let taxonomy = Taxonomy::builtin();
    let parser = RuleParser::new(taxonomy.clone());
    let repo = RuleRepository::new();
    // Two analysts independently adding overlapping jean rules (§4).
    for line in ["denim.*jeans? -> jeans", "jeans? -> jeans", "relaxed fit.*jeans? -> jeans"] {
        repo.add(parser.parse_rule(line).unwrap(), RuleMeta::default());
    }
    let mut generator = CatalogGenerator::with_seed(taxonomy, 311);
    let items = generator.generate(2_000);
    let index = TitleIndex::build(items.iter().map(|i| i.product.title.as_str()));

    let subs = find_subsumptions(&repo.enabled_snapshot(), Some(&index), 2);
    // Both specialized rules are subsumed by the bare `jeans?` rule.
    let bare = repo
        .full_snapshot()
        .into_iter()
        .find(|r| r.condition.to_string() == "title(jeans?)")
        .unwrap();
    let subsumed_by_bare = subs.iter().filter(|s| s.by == bare.id).count();
    assert_eq!(subsumed_by_bare, 2, "subsumptions found: {subs:?}");

    // Removing them leaves a single-rule module with identical behaviour.
    for s in &subs {
        repo.remove(s.subsumed, "subsumed");
    }
    let remaining = repo.enabled_snapshot();
    assert_eq!(remaining.len(), 1);
    for item in &items {
        let before = bare.matches(&item.product);
        let after = remaining[0].matches(&item.product);
        assert_eq!(before, after);
    }
}

#[test]
fn impact_tracker_flags_rules_that_grow_hot() {
    use rulekit::eval::ImpactTracker;
    let taxonomy = Taxonomy::builtin();
    let parser = RuleParser::new(taxonomy.clone());
    let repo = RuleRepository::new();
    let tail_rule = repo.add(
        parser.parse_rule("zirconia fiber -> abrasive wheels & discs").unwrap(),
        RuleMeta::default(),
    );
    let rules = repo.enabled_snapshot();

    let mut generator = CatalogGenerator::with_seed(taxonomy.clone(), 321);
    let mut tracker = ImpactTracker::new(10);

    // On a Zipf stream the tail rule stays cold…
    for item in generator.generate(500) {
        for rule in &rules {
            if rule.matches(&item.product) {
                tracker.record_touch(rule.id);
            }
        }
    }
    assert!(tracker.pending_alerts().is_empty());

    // …until the distribution shifts toward its type (§5.3's scenario).
    let abrasive = taxonomy.id_of("abrasive wheels & discs").unwrap();
    let mut alerted = false;
    for item in generator.generate_n_for_type(abrasive, 400) {
        for rule in &rules {
            if rule.matches(&item.product) && tracker.record_touch(rule.id) {
                alerted = true;
            }
        }
    }
    assert!(alerted, "tail rule never became impactful");
    assert_eq!(tracker.pending_alerts(), vec![tail_rule]);
}
